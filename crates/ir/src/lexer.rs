//! Hand-written lexer for the frontend language.

use crate::{IrError, Result};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    /// Bare identifier: type names, constructor names, operator names,
    /// keywords are separated out below.
    Ident(String),
    /// `@name` — global function reference.
    Global(String),
    /// `%name` — local variable / input parameter.
    Local(String),
    /// `$name` — model parameter.
    Model(String),
    Int(i64),
    Float(f64),
    // keywords
    KwDef,
    KwType,
    KwLet,
    KwIf,
    KwElse,
    KwMatch,
    KwParallel,
    KwPhase,
    KwFn,
    KwMap,
    KwTrue,
    KwFalse,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    FatArrow,
    ThinArrow,
    Assign,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Plus,
    Minus,
    Star,
    Slash,
    Bang,
    Eof,
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub tok: Tok,
    pub line: usize,
    pub col: usize,
}

pub(crate) fn lex(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($tok:expr, $line:expr, $col:expr) => {
            out.push(Token { tok: $tok, line: $line, col: $col })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tl, tc) = (line, col);
        let advance = |n: usize, i: &mut usize, col: &mut usize| {
            *i += n;
            *col += n;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => advance(1, &mut i, &mut col),
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // (* block comment *) — may span lines, no nesting.
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(IrError::Lex {
                            line: tl,
                            col: tc,
                            msg: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b')' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '(' => {
                push!(Tok::LParen, tl, tc);
                advance(1, &mut i, &mut col);
            }
            ')' => {
                push!(Tok::RParen, tl, tc);
                advance(1, &mut i, &mut col);
            }
            '{' => {
                push!(Tok::LBrace, tl, tc);
                advance(1, &mut i, &mut col);
            }
            '}' => {
                push!(Tok::RBrace, tl, tc);
                advance(1, &mut i, &mut col);
            }
            '[' => {
                push!(Tok::LBracket, tl, tc);
                advance(1, &mut i, &mut col);
            }
            ']' => {
                push!(Tok::RBracket, tl, tc);
                advance(1, &mut i, &mut col);
            }
            ',' => {
                push!(Tok::Comma, tl, tc);
                advance(1, &mut i, &mut col);
            }
            ';' => {
                push!(Tok::Semi, tl, tc);
                advance(1, &mut i, &mut col);
            }
            ':' => {
                push!(Tok::Colon, tl, tc);
                advance(1, &mut i, &mut col);
            }
            '.' => {
                push!(Tok::Dot, tl, tc);
                advance(1, &mut i, &mut col);
            }
            '+' => {
                push!(Tok::Plus, tl, tc);
                advance(1, &mut i, &mut col);
            }
            '*' => {
                push!(Tok::Star, tl, tc);
                advance(1, &mut i, &mut col);
            }
            '/' => {
                push!(Tok::Slash, tl, tc);
                advance(1, &mut i, &mut col);
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push!(Tok::FatArrow, tl, tc);
                    advance(2, &mut i, &mut col);
                } else if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::EqEq, tl, tc);
                    advance(2, &mut i, &mut col);
                } else {
                    push!(Tok::Assign, tl, tc);
                    advance(1, &mut i, &mut col);
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push!(Tok::ThinArrow, tl, tc);
                    advance(2, &mut i, &mut col);
                } else {
                    push!(Tok::Minus, tl, tc);
                    advance(1, &mut i, &mut col);
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Le, tl, tc);
                    advance(2, &mut i, &mut col);
                } else {
                    push!(Tok::Lt, tl, tc);
                    advance(1, &mut i, &mut col);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ge, tl, tc);
                    advance(2, &mut i, &mut col);
                } else {
                    push!(Tok::Gt, tl, tc);
                    advance(1, &mut i, &mut col);
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ne, tl, tc);
                    advance(2, &mut i, &mut col);
                } else {
                    push!(Tok::Bang, tl, tc);
                    advance(1, &mut i, &mut col);
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    push!(Tok::AndAnd, tl, tc);
                    advance(2, &mut i, &mut col);
                } else {
                    return Err(IrError::Lex { line: tl, col: tc, msg: "expected `&&`".into() });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    push!(Tok::OrOr, tl, tc);
                    advance(2, &mut i, &mut col);
                } else {
                    return Err(IrError::Lex { line: tl, col: tc, msg: "expected `||`".into() });
                }
            }
            '@' | '%' | '$' => {
                let sigil = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    return Err(IrError::Lex {
                        line: tl,
                        col: tc,
                        msg: format!("expected identifier after `{sigil}`"),
                    });
                }
                let name = src[start..j].to_string();
                let tok = match sigil {
                    '@' => Tok::Global(name),
                    '%' => Tok::Local(name),
                    _ => Tok::Model(name),
                };
                push!(tok, tl, tc);
                let n = j - i;
                advance(n, &mut i, &mut col);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && bytes[j + 1].is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    is_float = true;
                    j += 1;
                    if j < bytes.len() && (bytes[j] == b'-' || bytes[j] == b'+') {
                        j += 1;
                    }
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &src[start..j];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| IrError::Lex {
                        line: tl,
                        col: tc,
                        msg: format!("bad float literal `{text}`"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| IrError::Lex {
                        line: tl,
                        col: tc,
                        msg: format!("bad int literal `{text}`"),
                    })?)
                };
                push!(tok, tl, tc);
                let n = j - i;
                advance(n, &mut i, &mut col);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let word = &src[start..j];
                let tok = match word {
                    "def" => Tok::KwDef,
                    "type" => Tok::KwType,
                    "let" => Tok::KwLet,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "match" => Tok::KwMatch,
                    "parallel" => Tok::KwParallel,
                    "phase" => Tok::KwPhase,
                    "fn" => Tok::KwFn,
                    "map" => Tok::KwMap,
                    "true" => Tok::KwTrue,
                    "false" => Tok::KwFalse,
                    _ => Tok::Ident(word.to_string()),
                };
                push!(tok, tl, tc);
                let n = j - i;
                advance(n, &mut i, &mut col);
            }
            other => {
                return Err(IrError::Lex {
                    line: tl,
                    col: tc,
                    msg: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    out.push(Token { tok: Tok::Eof, line, col });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn sigils() {
        assert_eq!(
            toks("@rnn %x $w"),
            vec![
                Tok::Global("rnn".into()),
                Tok::Local("x".into()),
                Tok::Model("w".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 0.5 1e-3"),
            vec![Tok::Int(42), Tok::Float(0.5), Tok::Float(1e-3), Tok::Eof]
        );
    }

    #[test]
    fn operators_and_arrows() {
        assert_eq!(
            toks("-> => <= >= == != && || < >"),
            vec![
                Tok::ThinArrow,
                Tok::FatArrow,
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::Ne,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("let // trailing\n(* block\ncomment *) if"),
            vec![Tok::KwLet, Tok::KwIf, Tok::Eof]
        );
    }

    #[test]
    fn unterminated_block_comment() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn position_tracking() {
        let ts = lex("let\n  if").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn bad_chars_rejected() {
        assert!(lex("let ^ x").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("% ").is_err());
    }

    #[test]
    fn keywords_vs_idents() {
        assert_eq!(
            toks("matmul type lettuce"),
            vec![Tok::Ident("matmul".into()), Tok::KwType, Tok::Ident("lettuce".into()), Tok::Eof]
        );
    }
}
