//! The frontend language of the ACROBAT reproduction.
//!
//! ACROBAT accepts dynamic deep-learning computations written in "a simple
//! Turing-complete functional language" (the functional subset of Relay).
//! This crate provides a faithful miniature of that input language:
//!
//! * algebraic data types with generics (`type List[a] { Nil, Cons(a, List[a]) }`),
//! * recursive functions, `match`, `let`, `if`, tuples,
//! * tensor intrinsics drawn from [`acrobat_tensor::PrimOp`] with
//!   attribute syntax (`concat[axis=1](%a, %b)`),
//! * native scalars (`Int`, `Float`, `Bool`) — the paper lowers Relay's
//!   zero-dimensional tensors to native C++ scalars in its AOT backend
//!   (§D.2); here scalars are native in the IR and it is the *Relay-VM
//!   baseline* that deliberately boxes them,
//! * tensor-dependent control flow via the sync intrinsics `item(%t)`
//!   (read a scalar out of a tensor — forces DFG evaluation) and
//!   `sample(%t)` (force evaluation, then draw a seeded pseudo-random
//!   number: the paper's §E.1 device for emulating tensor-dependent
//!   decisions without trained weights),
//! * the paper's annotations: `parallel(e₁, e₂, …)` marks concurrent calls
//!   (Fig. 2), `phase;` marks a manual program-phase boundary (§4.1), and
//!   `$`-prefixed `@main` parameters declare model parameters (the seeds of
//!   the parameter-reuse taint analysis, §5.1).
//!
//! # Pipeline position
//!
//! `acrobat-ir` owns parsing ([`parse_module`]), type/shape checking
//! ([`typeck::check_module`]) and pretty-printing. Static analyses live in
//! `acrobat-analysis`; execution in `acrobat-vm`.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
//!         relu(matmul(%x, $w))
//!     }
//! "#;
//! let module = acrobat_ir::parse_module(src)?;
//! let typed = acrobat_ir::typeck::check_module(module)?;
//! assert!(typed.functions.contains_key("main"));
//! # Ok::<(), acrobat_ir::IrError>(())
//! ```

#![deny(missing_docs)]

pub mod ast;
mod error;
mod lexer;
pub mod ops;
mod parser;
mod printer;
pub mod typeck;

pub use ast::{
    Adt, Arm, Callee, Ctor, Expr, ExprId, ExprKind, FnDef, Module, Param, ParamKind, Pattern,
    ScalarBinOp, ScalarUnOp, SyncKind, Type,
};
pub use error::IrError;
pub use parser::parse_module;
pub use printer::print_module;

/// Result alias for fallible frontend operations.
pub type Result<T> = std::result::Result<T, IrError>;
