//! Recursive-descent parser for the frontend language.
//!
//! The surface syntax is Relay-flavoured; see the crate docs and the model
//! sources in `acrobat-models` for full-scale examples.  The parser resolves
//! nothing — names are checked by the type checker.

use std::collections::BTreeMap;

use acrobat_tensor::Shape;

use crate::ast::*;
use crate::lexer::{lex, Tok, Token};
use crate::{IrError, Result};

/// Parses a complete module (ADT declarations plus function definitions).
///
/// The built-in `List` ADT is always available.
///
/// # Errors
///
/// Returns [`IrError::Lex`] / [`IrError::Parse`] with source positions.
///
/// ```
/// let m = acrobat_ir::parse_module("def @main(%x: Int) -> Int { %x + 1 }")?;
/// assert_eq!(m.functions["main"].params.len(), 1);
/// # Ok::<(), acrobat_ir::IrError>(())
/// ```
pub fn parse_module(src: &str) -> Result<Module> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, module: Module::with_prelude() };
    while !p.at(&Tok::Eof) {
        if p.at(&Tok::KwType) {
            p.parse_typedef()?;
        } else if p.at(&Tok::KwDef) {
            p.parse_fndef()?;
        } else {
            return Err(p.err("expected `type` or `def` at top level"));
        }
    }
    Ok(p.module)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    module: Module,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn err(&self, msg: &str) -> IrError {
        let tok = &self.tokens[self.pos];
        IrError::Parse { line: tok.line, col: tok.col, msg: format!("{msg}, found {:?}", tok.tok) }
    }

    fn mk(&mut self, kind: ExprKind) -> Expr {
        Expr { id: self.module.fresh_id(), kind }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            _ => {
                self.pos -= 1;
                Err(self.err(&format!("expected {what}")))
            }
        }
    }

    // ---- declarations ----------------------------------------------------

    fn parse_typedef(&mut self) -> Result<()> {
        self.expect(&Tok::KwType, "`type`")?;
        let name = self.ident("type name")?;
        let mut type_vars = Vec::new();
        if self.eat(&Tok::LBracket) {
            loop {
                type_vars.push(self.ident("type variable")?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBracket, "`]`")?;
        }
        self.expect(&Tok::LBrace, "`{`")?;
        let mut ctors = Vec::new();
        loop {
            let cname = self.ident("constructor name")?;
            let mut fields = Vec::new();
            if self.eat(&Tok::LParen) {
                loop {
                    fields.push(self.parse_type()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen, "`)`")?;
            }
            ctors.push(Ctor { name: cname, fields });
            if !self.eat(&Tok::Comma) {
                break;
            }
            if self.at(&Tok::RBrace) {
                break; // trailing comma
            }
        }
        self.expect(&Tok::RBrace, "`}`")?;
        self.module.adts.insert(name.clone(), Adt { name, type_vars, ctors });
        Ok(())
    }

    fn parse_fndef(&mut self) -> Result<()> {
        self.expect(&Tok::KwDef, "`def`")?;
        let name = match self.bump() {
            Tok::Global(n) => n,
            _ => {
                self.pos -= 1;
                return Err(self.err("expected `@function_name`"));
            }
        };
        self.expect(&Tok::LParen, "`(`")?;
        let params = self.parse_params()?;
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::ThinArrow, "`->`")?;
        let ret = self.parse_type()?;
        let body = self.parse_block()?;
        self.module.functions.insert(name.clone(), FnDef { name, params, ret, body });
        Ok(())
    }

    fn parse_params(&mut self) -> Result<Vec<Param>> {
        let mut params = Vec::new();
        if self.at(&Tok::RParen) {
            return Ok(params);
        }
        loop {
            let (name, kind) = match self.bump() {
                Tok::Local(n) => (n, ParamKind::Input),
                Tok::Model(n) => (n, ParamKind::Model),
                _ => {
                    self.pos -= 1;
                    return Err(self.err("expected parameter (`%name` or `$name`)"));
                }
            };
            let ty = if self.eat(&Tok::Colon) {
                self.parse_type()?
            } else {
                let v = self.module.next_type_var;
                self.module.next_type_var += 1;
                Type::Var(v)
            };
            params.push(Param { name, ty, kind });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(params)
    }

    // ---- types -----------------------------------------------------------

    fn parse_type(&mut self) -> Result<Type> {
        match self.bump() {
            Tok::Ident(name) => match name.as_str() {
                "Tensor" => {
                    self.expect(&Tok::LBracket, "`[` after Tensor")?;
                    let dims = self.parse_shape_lit()?;
                    self.expect(&Tok::RBracket, "`]`")?;
                    Ok(Type::Tensor(Shape::from(dims)))
                }
                "Int" => Ok(Type::Int),
                "Float" => Ok(Type::Float),
                "Bool" => Ok(Type::Bool),
                _ => {
                    let mut args = Vec::new();
                    if self.eat(&Tok::LBracket) {
                        loop {
                            args.push(self.parse_type()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RBracket, "`]`")?;
                    }
                    Ok(Type::Adt { name, args })
                }
            },
            Tok::LParen => {
                let mut parts = vec![self.parse_type()?];
                while self.eat(&Tok::Comma) {
                    parts.push(self.parse_type()?);
                }
                self.expect(&Tok::RParen, "`)`")?;
                if parts.len() == 1 {
                    Ok(parts.pop().expect("one element"))
                } else {
                    Ok(Type::Tuple(parts))
                }
            }
            Tok::KwFn => {
                self.expect(&Tok::LParen, "`(`")?;
                let mut params = Vec::new();
                if !self.at(&Tok::RParen) {
                    loop {
                        params.push(self.parse_type()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::ThinArrow, "`->`")?;
                let ret = Box::new(self.parse_type()?);
                Ok(Type::Fn { params, ret })
            }
            _ => {
                self.pos -= 1;
                Err(self.err("expected a type"))
            }
        }
    }

    fn parse_shape_lit(&mut self) -> Result<Vec<usize>> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut dims = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                match self.bump() {
                    Tok::Int(v) if v >= 0 => dims.push(v as usize),
                    _ => {
                        self.pos -= 1;
                        return Err(self.err("expected a dimension"));
                    }
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        Ok(dims)
    }

    // ---- statements / blocks ----------------------------------------------

    /// Parses `{ stmt* expr }` where statements are `let`-bindings, `phase;`
    /// markers, or discarded expressions terminated by `;`.
    fn parse_block(&mut self) -> Result<Expr> {
        self.expect(&Tok::LBrace, "`{`")?;
        let e = self.parse_stmts()?;
        self.expect(&Tok::RBrace, "`}`")?;
        Ok(e)
    }

    fn parse_stmts(&mut self) -> Result<Expr> {
        if self.eat(&Tok::KwLet) {
            let pat = self.parse_pattern()?;
            self.expect(&Tok::Assign, "`=`")?;
            let value = self.parse_expr()?;
            self.expect(&Tok::Semi, "`;` after let")?;
            let body = self.parse_stmts()?;
            return Ok(self.mk(ExprKind::Let {
                pat,
                value: Box::new(value),
                body: Box::new(body),
            }));
        }
        if self.at(&Tok::KwPhase) && self.peek2() == &Tok::Semi {
            self.bump();
            self.bump();
            let marker = self.mk(ExprKind::PhaseBoundary);
            let body = self.parse_stmts()?;
            return Ok(self.mk(ExprKind::Let {
                pat: Pattern::Wildcard,
                value: Box::new(marker),
                body: Box::new(body),
            }));
        }
        let e = self.parse_expr()?;
        if self.eat(&Tok::Semi) {
            let body = self.parse_stmts()?;
            return Ok(self.mk(ExprKind::Let {
                pat: Pattern::Wildcard,
                value: Box::new(e),
                body: Box::new(body),
            }));
        }
        Ok(e)
    }

    fn parse_pattern(&mut self) -> Result<Pattern> {
        match self.bump() {
            Tok::Local(n) => {
                if n == "_" {
                    Ok(Pattern::Wildcard)
                } else {
                    Ok(Pattern::Var(n))
                }
            }
            Tok::LParen => {
                let mut names = Vec::new();
                loop {
                    match self.bump() {
                        Tok::Local(n) => names.push(n),
                        _ => {
                            self.pos -= 1;
                            return Err(self.err("expected `%name` in tuple pattern"));
                        }
                    }
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen, "`)`")?;
                Ok(Pattern::Tuple(names))
            }
            _ => {
                self.pos -= 1;
                Err(self.err("expected a binding pattern"))
            }
        }
    }

    // ---- expressions -------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.parse_and()?;
            lhs = self.mk(ExprKind::ScalarBin {
                op: ScalarBinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_cmp()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.parse_cmp()?;
            lhs = self.mk(ExprKind::ScalarBin {
                op: ScalarBinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Tok::Lt => ScalarBinOp::Lt,
            Tok::Le => ScalarBinOp::Le,
            Tok::Gt => ScalarBinOp::Gt,
            Tok::Ge => ScalarBinOp::Ge,
            Tok::EqEq => ScalarBinOp::Eq,
            Tok::Ne => ScalarBinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_additive()?;
        Ok(self.mk(ExprKind::ScalarBin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => ScalarBinOp::Add,
                Tok::Minus => ScalarBinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = self.mk(ExprKind::ScalarBin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) });
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => ScalarBinOp::Mul,
                Tok::Slash => ScalarBinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = self.mk(ExprKind::ScalarBin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) });
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Minus) {
            let operand = self.parse_unary()?;
            return Ok(
                self.mk(ExprKind::ScalarUn { op: ScalarUnOp::Neg, operand: Box::new(operand) })
            );
        }
        if self.eat(&Tok::Bang) {
            let operand = self.parse_unary()?;
            return Ok(
                self.mk(ExprKind::ScalarUn { op: ScalarUnOp::Not, operand: Box::new(operand) })
            );
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_atom()?;
        while self.at(&Tok::Dot) {
            self.bump();
            match self.bump() {
                Tok::Int(i) if i >= 0 => {
                    e = self.mk(ExprKind::Proj { tuple: Box::new(e), index: i as usize });
                }
                _ => {
                    self.pos -= 1;
                    return Err(self.err("expected tuple index after `.`"));
                }
            }
        }
        Ok(e)
    }

    fn parse_args(&mut self) -> Result<Vec<Expr>> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        Ok(args)
    }

    fn parse_attrs(&mut self) -> Result<BTreeMap<String, AttrValue>> {
        let mut attrs = BTreeMap::new();
        if !self.eat(&Tok::LBracket) {
            return Ok(attrs);
        }
        loop {
            let key = self.ident("attribute name")?;
            self.expect(&Tok::Assign, "`=`")?;
            let value = match self.peek().clone() {
                Tok::Int(v) => {
                    self.bump();
                    AttrValue::Int(v)
                }
                Tok::Float(v) => {
                    self.bump();
                    AttrValue::Float(v)
                }
                Tok::Minus => {
                    self.bump();
                    match self.bump() {
                        Tok::Int(v) => AttrValue::Int(-v),
                        Tok::Float(v) => AttrValue::Float(-v),
                        _ => {
                            self.pos -= 1;
                            return Err(self.err("expected number after `-`"));
                        }
                    }
                }
                Tok::LParen => AttrValue::Shape(self.parse_shape_lit()?),
                _ => return Err(self.err("expected attribute value")),
            };
            attrs.insert(key, value);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RBracket, "`]`")?;
        Ok(attrs)
    }

    fn parse_atom(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(self.mk(ExprKind::IntLit(v)))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(self.mk(ExprKind::FloatLit(v)))
            }
            Tok::KwTrue => {
                self.bump();
                Ok(self.mk(ExprKind::BoolLit(true)))
            }
            Tok::KwFalse => {
                self.bump();
                Ok(self.mk(ExprKind::BoolLit(false)))
            }
            Tok::Local(n) => {
                self.bump();
                // `%f(args)` applies a lambda-typed variable.
                if self.at(&Tok::LParen) {
                    let args = self.parse_args()?;
                    return Ok(self.mk(ExprKind::Call { callee: Callee::Var(n), args }));
                }
                Ok(self.mk(ExprKind::Var(n)))
            }
            Tok::Model(n) => {
                self.bump();
                Ok(self.mk(ExprKind::Var(n)))
            }
            Tok::Global(n) => {
                self.bump();
                if self.at(&Tok::LParen) {
                    let args = self.parse_args()?;
                    Ok(self.mk(ExprKind::Call { callee: Callee::Global(n), args }))
                } else {
                    // Bare global reference: sugar for an eta-expanded lambda
                    // is handled in `map` below; elsewhere it is an error at
                    // type checking time, so represent it as a call-less var.
                    Err(self.err("global function reference requires arguments (use `map(@f, …)` or a lambda)"))
                }
            }
            Tok::LParen => {
                self.bump();
                let mut parts = vec![self.parse_expr()?];
                while self.eat(&Tok::Comma) {
                    parts.push(self.parse_expr()?);
                }
                self.expect(&Tok::RParen, "`)`")?;
                if parts.len() == 1 {
                    Ok(parts.pop().expect("one element"))
                } else {
                    Ok(self.mk(ExprKind::Tuple(parts)))
                }
            }
            Tok::KwIf => {
                self.bump();
                let cond = self.parse_expr()?;
                let then = self.parse_block()?;
                self.expect(&Tok::KwElse, "`else`")?;
                let els =
                    if self.at(&Tok::KwIf) { self.parse_atom()? } else { self.parse_block()? };
                Ok(self.mk(ExprKind::If {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                }))
            }
            Tok::KwMatch => {
                self.bump();
                let scrutinee = self.parse_expr()?;
                self.expect(&Tok::LBrace, "`{`")?;
                let mut arms = Vec::new();
                loop {
                    let ctor = self.ident("constructor pattern")?;
                    let mut binders = Vec::new();
                    if self.eat(&Tok::LParen) {
                        loop {
                            match self.bump() {
                                Tok::Local(n) => binders.push(n),
                                _ => {
                                    self.pos -= 1;
                                    return Err(self.err("expected `%name` binder"));
                                }
                            }
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen, "`)`")?;
                    }
                    self.expect(&Tok::FatArrow, "`=>`")?;
                    let body = if self.at(&Tok::LBrace) {
                        self.parse_block()?
                    } else {
                        self.parse_expr()?
                    };
                    arms.push(Arm { ctor, binders, body });
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                    if self.at(&Tok::RBrace) {
                        break;
                    }
                }
                self.expect(&Tok::RBrace, "`}`")?;
                Ok(self.mk(ExprKind::Match { scrutinee: Box::new(scrutinee), arms }))
            }
            Tok::KwParallel => {
                self.bump();
                let args = self.parse_args()?;
                Ok(self.mk(ExprKind::Parallel(args)))
            }
            Tok::KwFn => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let params = self.parse_params()?;
                self.expect(&Tok::RParen, "`)`")?;
                let body = self.parse_block()?;
                Ok(self.mk(ExprKind::Lambda { params, body: Box::new(body) }))
            }
            Tok::KwMap => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let func = if let Tok::Global(g) = self.peek().clone() {
                    // Sugar: `map(@f, xs)` ≡ `map(fn(%__map_arg) { @f(%__map_arg) }, xs)`.
                    self.bump();
                    let v = self.module.next_type_var;
                    self.module.next_type_var += 1;
                    let arg = self.mk(ExprKind::Var("__map_arg".into()));
                    let call =
                        self.mk(ExprKind::Call { callee: Callee::Global(g), args: vec![arg] });
                    self.mk(ExprKind::Lambda {
                        params: vec![Param {
                            name: "__map_arg".into(),
                            ty: Type::Var(v),
                            kind: ParamKind::Input,
                        }],
                        body: Box::new(call),
                    })
                } else {
                    self.parse_expr()?
                };
                self.expect(&Tok::Comma, "`,`")?;
                let list = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(self.mk(ExprKind::Map { func: Box::new(func), list: Box::new(list) }))
            }
            Tok::Ident(name) => {
                self.bump();
                // `item` / `sample` / `rand_range` intrinsics.
                match name.as_str() {
                    "item" | "sample" => {
                        let mut args = self.parse_args()?;
                        if args.len() != 1 {
                            return Err(self.err(&format!("`{name}` takes exactly one argument")));
                        }
                        let kind = if name == "item" { SyncKind::Item } else { SyncKind::Sample };
                        return Ok(self.mk(ExprKind::Sync {
                            kind,
                            tensor: Box::new(args.pop().expect("one arg")),
                        }));
                    }
                    "rand_range" => {
                        let attrs = self.parse_attrs()?;
                        let args = self.parse_args()?;
                        if !args.is_empty() {
                            return Err(self.err("`rand_range` takes attributes, not arguments"));
                        }
                        let get = |k: &str| match attrs.get(k) {
                            Some(AttrValue::Int(v)) => Ok(*v),
                            _ => Err(self.err(&format!("`rand_range` needs integer attr `{k}`"))),
                        };
                        let lo = get("lo")?;
                        let hi = get("hi")?;
                        return Ok(self.mk(ExprKind::RandRange { lo, hi }));
                    }
                    "to_float" => {
                        let mut args = self.parse_args()?;
                        if args.len() != 1 {
                            return Err(self.err("`to_float` takes exactly one argument"));
                        }
                        return Ok(self.mk(ExprKind::ScalarUn {
                            op: ScalarUnOp::ToFloat,
                            operand: Box::new(args.pop().expect("one arg")),
                        }));
                    }
                    _ => {}
                }
                let first_upper = name.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                if first_upper {
                    // Constructor application (possibly nullary: `Nil`).
                    let args = if self.at(&Tok::LParen) { self.parse_args()? } else { Vec::new() };
                    Ok(self.mk(ExprKind::Call { callee: Callee::Ctor(name), args }))
                } else {
                    // Tensor operator call with optional attributes.
                    let attrs = self.parse_attrs()?;
                    let args = self.parse_args()?;
                    Ok(self.mk(ExprKind::Call { callee: Callee::Op { name, attrs }, args }))
                }
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Module {
        parse_module(src).unwrap()
    }

    #[test]
    fn minimal_fn() {
        let m = parse("def @main(%x: Int) -> Int { %x + 1 }");
        let f = &m.functions["main"];
        assert_eq!(f.params[0].kind, ParamKind::Input);
        assert!(matches!(f.body.kind, ExprKind::ScalarBin { op: ScalarBinOp::Add, .. }));
    }

    #[test]
    fn model_params() {
        let m = parse("def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] { matmul(%x, $w) }");
        let f = &m.functions["main"];
        assert_eq!(f.params[0].kind, ParamKind::Model);
        assert_eq!(f.params[1].kind, ParamKind::Input);
        assert_eq!(f.params[0].ty, Type::tensor(&[2, 2]));
    }

    #[test]
    fn rnn_listing_parses() {
        // Mirror of the paper's Listing 1.
        let src = r#"
            def @rnn(%inps: List[Tensor[(1, 8)]], %state: Tensor[(1, 8)],
                     $bias: Tensor[(1, 8)], $i_wt: Tensor[(8, 8)], $h_wt: Tensor[(8, 8)])
                -> List[Tensor[(1, 8)]] {
                match %inps {
                    Nil => Nil,
                    Cons(%inp, %tail) => {
                        let %inp_linear = add($bias, matmul(%inp, $i_wt));
                        let %new_state = sigmoid(add(%inp_linear, matmul(%state, $h_wt)));
                        Cons(%new_state, @rnn(%tail, %new_state, $bias, $i_wt, $h_wt))
                    }
                }
            }
            def @main($bias: Tensor[(1, 8)], $i_wt: Tensor[(8, 8)], $h_wt: Tensor[(8, 8)],
                      $init: Tensor[(1, 8)], $c_wt: Tensor[(8, 4)], $c_bias: Tensor[(1, 4)],
                      %inps: List[Tensor[(1, 8)]]) -> List[Tensor[(1, 4)]] {
                let %states = @rnn(%inps, $init, $bias, $i_wt, $h_wt);
                phase;
                map(fn(%p: Tensor[(1, 8)]) { relu(add($c_bias, matmul(%p, $c_wt))) }, %states)
            }
        "#;
        let m = parse(src);
        assert_eq!(m.functions.len(), 2);
        // @main body: Let -> Let(phase) -> Map
        let mut saw_phase = false;
        let mut saw_map = false;
        crate::ast::visit_exprs(&m.functions["main"].body, &mut |e| match &e.kind {
            ExprKind::PhaseBoundary => saw_phase = true,
            ExprKind::Map { .. } => saw_map = true,
            _ => {}
        });
        assert!(saw_phase && saw_map);
    }

    #[test]
    fn typedef_tree() {
        let m = parse(
            "type Tree[a] { Leaf(a), Node(Tree[a], Tree[a]) }
             def @main(%t: Tree[Tensor[(1, 2)]]) -> Int { 0 }",
        );
        let adt = &m.adts["Tree"];
        assert_eq!(adt.type_vars, vec!["a"]);
        assert_eq!(adt.ctors.len(), 2);
        assert_eq!(adt.ctors[1].fields.len(), 2);
    }

    #[test]
    fn parallel_and_tuple_destructure() {
        let m = parse(
            "def @f(%x: Int) -> Int { %x }
             def @main(%x: Int) -> Int {
                let (%a, %b) = parallel(@f(%x), @f(%x));
                %a + %b
             }",
        );
        let mut saw = false;
        crate::ast::visit_exprs(&m.functions["main"].body, &mut |e| {
            if let ExprKind::Parallel(es) = &e.kind {
                assert_eq!(es.len(), 2);
                saw = true;
            }
        });
        assert!(saw);
    }

    #[test]
    fn op_attrs() {
        let m = parse("def @main(%x: Tensor[(1, 4)]) -> Tensor[(1, 8)] { concat[axis=1](%x, %x) }");
        crate::ast::visit_exprs(&m.functions["main"].body, &mut |e| {
            if let ExprKind::Call { callee: Callee::Op { name, attrs }, .. } = &e.kind {
                assert_eq!(name, "concat");
                assert_eq!(attrs.get("axis"), Some(&AttrValue::Int(1)));
            }
        });
    }

    #[test]
    fn sync_intrinsics() {
        let m = parse("def @main(%x: Tensor[(1, 1)]) -> Bool { item(%x) > sample(%x) }");
        let mut kinds = Vec::new();
        crate::ast::visit_exprs(&m.functions["main"].body, &mut |e| {
            if let ExprKind::Sync { kind, .. } = &e.kind {
                kinds.push(*kind);
            }
        });
        assert_eq!(kinds, vec![SyncKind::Item, SyncKind::Sample]);
    }

    #[test]
    fn rand_range_attrs() {
        let m = parse("def @main(%x: Int) -> Int { rand_range[lo=20, hi=40]() }");
        let mut ok = false;
        crate::ast::visit_exprs(&m.functions["main"].body, &mut |e| {
            if let ExprKind::RandRange { lo: 20, hi: 40 } = e.kind {
                ok = true;
            }
        });
        assert!(ok);
    }

    #[test]
    fn if_else_chain() {
        let m = parse(
            "def @main(%x: Int) -> Int {
                if %x < 0 { 0 } else if %x < 10 { 1 } else { 2 }
            }",
        );
        assert!(matches!(m.functions["main"].body.kind, ExprKind::If { .. }));
    }

    #[test]
    fn projection() {
        let m = parse("def @main(%x: (Int, Bool)) -> Int { %x.0 }");
        assert!(matches!(m.functions["main"].body.kind, ExprKind::Proj { index: 0, .. }));
    }

    #[test]
    fn map_global_sugar() {
        let m = parse(
            "def @f(%x: Int) -> Int { %x }
             def @main(%xs: List[Int]) -> List[Int] { map(@f, %xs) }",
        );
        let mut saw_lambda = false;
        crate::ast::visit_exprs(&m.functions["main"].body, &mut |e| {
            if let ExprKind::Map { func, .. } = &e.kind {
                saw_lambda = matches!(func.kind, ExprKind::Lambda { .. });
            }
        });
        assert!(saw_lambda, "map(@f, …) should desugar to a lambda");
    }

    #[test]
    fn errors_have_positions() {
        let err = parse_module("def @main(%x: Int) -> Int {\n  %x +\n}").unwrap_err();
        match err {
            IrError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn bare_global_rejected() {
        assert!(parse_module("def @main(%x: Int) -> Int { @main }").is_err());
    }

    #[test]
    fn ctor_nullary_without_parens() {
        let m = parse("def @main(%x: Int) -> List[Int] { Nil }");
        assert!(matches!(
            &m.functions["main"].body.kind,
            ExprKind::Call { callee: Callee::Ctor(c), args } if c == "Nil" && args.is_empty()
        ));
    }

    #[test]
    fn statement_sequencing_desugars_to_let() {
        let m = parse("def @main(%x: Int) -> Int { %x + 1; %x + 2 }");
        assert!(matches!(
            &m.functions["main"].body.kind,
            ExprKind::Let { pat: Pattern::Wildcard, .. }
        ));
    }
}
