//! Abstract syntax of the frontend language.
//!
//! Every expression node carries a unique [`ExprId`] so that later compiler
//! passes (taint analysis, depth assignment, fusion grouping…) can attach
//! side tables without mutating the tree.

use std::collections::BTreeMap;
use std::fmt;

use acrobat_tensor::Shape;

/// Unique identifier of an expression node within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(pub u32);

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A type in the frontend language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A dense `f32` tensor with a static shape.
    Tensor(Shape),
    /// Native integer scalar.
    Int,
    /// Native floating-point scalar.
    Float,
    /// Native boolean scalar.
    Bool,
    /// Product type.
    Tuple(Vec<Type>),
    /// Instantiated algebraic data type, e.g. `List[Tensor[(1, 256)]]`.
    Adt {
        /// Name of the ADT (`List`, `Tree`, …).
        name: String,
        /// Type arguments.
        args: Vec<Type>,
    },
    /// Function type (used for lambdas passed to `@map`).
    Fn {
        /// Parameter types.
        params: Vec<Type>,
        /// Return type.
        ret: Box<Type>,
    },
    /// Unification variable (only present during type checking).
    Var(u32),
}

impl Type {
    /// Convenience constructor for tensor types.
    pub fn tensor(dims: &[usize]) -> Type {
        Type::Tensor(Shape::new(dims))
    }

    /// Convenience constructor for `List[elem]`.
    pub fn list(elem: Type) -> Type {
        Type::Adt { name: "List".into(), args: vec![elem] }
    }

    /// Returns `true` if the type contains no unification variables.
    pub fn is_concrete(&self) -> bool {
        match self {
            Type::Var(_) => false,
            Type::Tensor(_) | Type::Int | Type::Float | Type::Bool => true,
            Type::Tuple(ts) => ts.iter().all(Type::is_concrete),
            Type::Adt { args, .. } => args.iter().all(Type::is_concrete),
            Type::Fn { params, ret } => params.iter().all(Type::is_concrete) && ret.is_concrete(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Tensor(s) => write!(f, "Tensor[{s}]"),
            Type::Int => write!(f, "Int"),
            Type::Float => write!(f, "Float"),
            Type::Bool => write!(f, "Bool"),
            Type::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Type::Adt { name, args } => {
                write!(f, "{name}")?;
                if !args.is_empty() {
                    write!(f, "[")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            Type::Fn { params, ret } => {
                write!(f, "fn(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") -> {ret}")
            }
            Type::Var(v) => write!(f, "?{v}"),
        }
    }
}

/// A constructor of an algebraic data type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ctor {
    /// Constructor name (`Cons`, `Leaf`, …). Globally unique in a module.
    pub name: String,
    /// Field types; may reference the ADT's type variables as
    /// `Type::Adt { name: <var>, args: [] }` placeholders resolved during
    /// instantiation.
    pub fields: Vec<Type>,
}

/// An algebraic data type declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adt {
    /// ADT name.
    pub name: String,
    /// Generic type-variable names.
    pub type_vars: Vec<String>,
    /// Constructors.
    pub ctors: Vec<Ctor>,
}

/// Whether a parameter is a shared model parameter or a per-instance input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// `$name` — a model parameter, identical for every instance in the
    /// mini-batch.  These seed the parameter-reuse taint analysis (§5.1).
    Model,
    /// `%name` — per-instance input data.
    Input,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name (without sigil).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Model parameter vs per-instance input.
    pub kind: ParamKind,
}

/// Scalar binary operators (native control-flow arithmetic, §D.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl ScalarBinOp {
    /// Surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            ScalarBinOp::Add => "+",
            ScalarBinOp::Sub => "-",
            ScalarBinOp::Mul => "*",
            ScalarBinOp::Div => "/",
            ScalarBinOp::Lt => "<",
            ScalarBinOp::Le => "<=",
            ScalarBinOp::Gt => ">",
            ScalarBinOp::Ge => ">=",
            ScalarBinOp::Eq => "==",
            ScalarBinOp::Ne => "!=",
            ScalarBinOp::And => "&&",
            ScalarBinOp::Or => "||",
        }
    }

    /// Whether the result is `Bool`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            ScalarBinOp::Lt
                | ScalarBinOp::Le
                | ScalarBinOp::Gt
                | ScalarBinOp::Ge
                | ScalarBinOp::Eq
                | ScalarBinOp::Ne
                | ScalarBinOp::And
                | ScalarBinOp::Or
        )
    }
}

/// Scalar unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarUnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
    /// Int → Float conversion.
    ToFloat,
}

/// Synchronization intrinsics: expressions whose evaluation requires the
/// value of a tensor, forcing the lazily-built DFG to execute (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// `item(%t)` — extract the (single) element of a tensor as a `Float`.
    Item,
    /// `sample(%t)` — force the tensor's evaluation, then return the next
    /// pseudo-random `Float` in `[0, 1)` from the instance's seeded stream.
    /// This is the paper's §E.1 mechanism for emulating tensor-dependent
    /// control flow reproducibly across frameworks.
    Sample,
}

/// What a call expression invokes.
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// A global function `@name`.
    Global(String),
    /// A tensor operator from the registry, with attributes.
    Op {
        /// Operator name (`matmul`, `concat`, …).
        name: String,
        /// Attribute list (`[axis=1]`).
        attrs: BTreeMap<String, AttrValue>,
    },
    /// An ADT constructor.
    Ctor(String),
    /// A lambda-typed variable (only inside `@map`-style application).
    Var(String),
}

/// An operator attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer attribute.
    Int(i64),
    /// Floating-point attribute.
    Float(f64),
    /// Shape attribute, e.g. `shape=(1, 256)`.
    Shape(Vec<usize>),
}

/// Binding pattern on the left of a `let`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// Single variable.
    Var(String),
    /// Tuple destructuring, e.g. `let (%a, %b) = …`.
    Tuple(Vec<String>),
    /// Discard (`let %_ = …` / statement sequencing).
    Wildcard,
}

/// One arm of a `match`.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Constructor name being matched.
    pub ctor: String,
    /// Variables bound to the constructor's fields.
    pub binders: Vec<String>,
    /// Arm body.
    pub body: Expr,
}

/// An expression together with its [`ExprId`].
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique id within the module.
    pub id: ExprId,
    /// The expression proper.
    pub kind: ExprKind,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Variable reference.
    Var(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Boolean literal.
    BoolLit(bool),
    /// `let <pat> = value; body`.
    Let {
        /// Bound pattern.
        pat: Pattern,
        /// Bound value.
        value: Box<Expr>,
        /// Continuation.
        body: Box<Expr>,
    },
    /// `if cond { then } else { els }` — the condition is a native scalar.
    If {
        /// Boolean condition.
        cond: Box<Expr>,
        /// Then branch.
        then: Box<Expr>,
        /// Else branch.
        els: Box<Expr>,
    },
    /// `match scrutinee { Ctor(%a, %b) => body, … }`.
    Match {
        /// Scrutinized ADT value.
        scrutinee: Box<Expr>,
        /// Arms (one per constructor; exhaustiveness is checked).
        arms: Vec<Arm>,
    },
    /// Call of a global function, operator, constructor or lambda variable.
    Call {
        /// The callee.
        callee: Callee,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// Tuple projection `%x.0`.
    Proj {
        /// Tuple-valued expression.
        tuple: Box<Expr>,
        /// Field index.
        index: usize,
    },
    /// Anonymous function (argument of `@map`).
    Lambda {
        /// Parameters (always `ParamKind::Input`).
        params: Vec<Param>,
        /// Body.
        body: Box<Expr>,
    },
    /// `@map(f, list)` — builtin structure-preserving map over a list, whose
    /// element applications are independent (instance parallelism, O.2).
    Map {
        /// Function to apply (lambda or global).
        func: Box<Expr>,
        /// List argument.
        list: Box<Expr>,
    },
    /// `parallel(e₁, …, eₙ)` — the paper's concurrent-call annotation
    /// (Fig. 2): evaluates to a tuple whose components may execute
    /// concurrently.
    Parallel(Vec<Expr>),
    /// Scalar binary operation.
    ScalarBin {
        /// Operator.
        op: ScalarBinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Scalar unary operation.
    ScalarUn {
        /// Operator.
        op: ScalarUnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Tensor-value synchronization intrinsic (`item` / `sample`).
    Sync {
        /// Which intrinsic.
        kind: SyncKind,
        /// The tensor whose value is required.
        tensor: Box<Expr>,
    },
    /// `rand_range[lo=…, hi=…]()` — seeded pseudo-random integer in
    /// `[lo, hi]`; does *not* force DFG evaluation.
    RandRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// `phase;` — manual program-phase boundary annotation (§4.1); evaluates
    /// to unit-like `Int 0` and is otherwise a no-op.
    PhaseBoundary,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Function name (without the `@` sigil).
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Declared return type.
    pub ret: Type,
    /// Body expression.
    pub body: Expr,
}

/// A parsed (and possibly typed) module: ADTs plus functions.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// ADT declarations by name.
    pub adts: BTreeMap<String, Adt>,
    /// Function definitions by name.
    pub functions: BTreeMap<String, FnDef>,
    /// Inferred type of every expression (populated by the type checker).
    pub expr_types: BTreeMap<ExprId, Type>,
    /// Resolved primitive operator for every tensor-operator call site
    /// (populated by the type checker).
    pub op_prims: BTreeMap<ExprId, acrobat_tensor::PrimOp>,
    /// Number of expression ids allocated so far.
    pub next_expr_id: u32,
    /// Number of type variables allocated so far (parser + type checker).
    pub next_type_var: u32,
}

impl Module {
    /// Allocates a fresh [`ExprId`].
    pub fn fresh_id(&mut self) -> ExprId {
        let id = ExprId(self.next_expr_id);
        self.next_expr_id += 1;
        id
    }

    /// The inferred type of `id`.
    ///
    /// # Panics
    ///
    /// Panics if the module has not been type checked or `id` is foreign.
    pub fn type_of(&self, id: ExprId) -> &Type {
        self.expr_types.get(&id).expect("expression not typed; run typeck first")
    }

    /// Looks up the ADT that declares constructor `ctor`.
    pub fn adt_of_ctor(&self, ctor: &str) -> Option<&Adt> {
        self.adts.values().find(|adt| adt.ctors.iter().any(|c| c.name == ctor))
    }

    /// Built-in prelude ADTs (`List`) that every module receives.
    pub fn with_prelude() -> Module {
        let mut m = Module::default();
        m.adts.insert(
            "List".into(),
            Adt {
                name: "List".into(),
                type_vars: vec!["a".into()],
                ctors: vec![
                    Ctor { name: "Nil".into(), fields: vec![] },
                    Ctor {
                        name: "Cons".into(),
                        fields: vec![
                            Type::Adt { name: "a".into(), args: vec![] },
                            Type::Adt {
                                name: "List".into(),
                                args: vec![Type::Adt { name: "a".into(), args: vec![] }],
                            },
                        ],
                    },
                ],
            },
        );
        m
    }
}

/// Walks an expression tree, calling `f` on every node (pre-order).
pub fn visit_exprs<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    match &expr.kind {
        ExprKind::Var(_)
        | ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::RandRange { .. }
        | ExprKind::PhaseBoundary => {}
        ExprKind::Let { value, body, .. } => {
            visit_exprs(value, f);
            visit_exprs(body, f);
        }
        ExprKind::If { cond, then, els } => {
            visit_exprs(cond, f);
            visit_exprs(then, f);
            visit_exprs(els, f);
        }
        ExprKind::Match { scrutinee, arms } => {
            visit_exprs(scrutinee, f);
            for arm in arms {
                visit_exprs(&arm.body, f);
            }
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                visit_exprs(a, f);
            }
        }
        ExprKind::Tuple(es) | ExprKind::Parallel(es) => {
            for e in es {
                visit_exprs(e, f);
            }
        }
        ExprKind::Proj { tuple, .. } => visit_exprs(tuple, f),
        ExprKind::Lambda { body, .. } => visit_exprs(body, f),
        ExprKind::Map { func, list } => {
            visit_exprs(func, f);
            visit_exprs(list, f);
        }
        ExprKind::ScalarBin { lhs, rhs, .. } => {
            visit_exprs(lhs, f);
            visit_exprs(rhs, f);
        }
        ExprKind::ScalarUn { operand, .. } => visit_exprs(operand, f),
        ExprKind::Sync { tensor, .. } => visit_exprs(tensor, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        let t = Type::list(Type::tensor(&[1, 4]));
        assert_eq!(t.to_string(), "List[Tensor[(1, 4)]]");
        let f = Type::Fn { params: vec![Type::Int, Type::Bool], ret: Box::new(Type::Float) };
        assert_eq!(f.to_string(), "fn(Int, Bool) -> Float");
        assert_eq!(Type::Tuple(vec![Type::Int, Type::Int]).to_string(), "(Int, Int)");
    }

    #[test]
    fn concrete_detection() {
        assert!(Type::tensor(&[2]).is_concrete());
        assert!(!Type::Var(0).is_concrete());
        assert!(!Type::list(Type::Var(1)).is_concrete());
    }

    #[test]
    fn prelude_has_list() {
        let m = Module::with_prelude();
        assert!(m.adts.contains_key("List"));
        assert_eq!(m.adt_of_ctor("Cons").unwrap().name, "List");
        assert_eq!(m.adt_of_ctor("Nil").unwrap().name, "List");
        assert!(m.adt_of_ctor("Leaf").is_none());
    }

    #[test]
    fn fresh_ids_monotonic() {
        let mut m = Module::default();
        let a = m.fresh_id();
        let b = m.fresh_id();
        assert!(b > a);
    }
}
