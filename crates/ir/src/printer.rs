//! Pretty printer: turns a [`Module`] back into (re-parseable) surface syntax.

use std::fmt::Write;

use crate::ast::*;

/// Prints a module as surface syntax.
///
/// The output is intended to round-trip: `parse_module(print_module(m))`
/// yields a structurally equal module (modulo expression ids).
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for adt in module.adts.values() {
        if adt.name == "List" {
            continue; // prelude
        }
        let _ = write!(out, "type {}", adt.name);
        if !adt.type_vars.is_empty() {
            let _ = write!(out, "[{}]", adt.type_vars.join(", "));
        }
        let _ = writeln!(out, " {{");
        for (i, c) in adt.ctors.iter().enumerate() {
            let sep = if i + 1 < adt.ctors.len() { "," } else { "" };
            if c.fields.is_empty() {
                let _ = writeln!(out, "  {}{}", c.name, sep);
            } else {
                let fields: Vec<String> = c.fields.iter().map(|f| f.to_string()).collect();
                let _ = writeln!(out, "  {}({}){}", c.name, fields.join(", "), sep);
            }
        }
        let _ = writeln!(out, "}}");
    }
    for f in module.functions.values() {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| {
                let sigil = match p.kind {
                    ParamKind::Model => '$',
                    ParamKind::Input => '%',
                };
                format!("{sigil}{}: {}", p.name, p.ty)
            })
            .collect();
        let _ = writeln!(out, "def @{}({}) -> {} {{", f.name, params.join(", "), f.ret);
        let mut body = String::new();
        print_expr(&f.body, 1, &mut body);
        let _ = writeln!(out, "{body}");
        let _ = writeln!(out, "}}");
    }
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_expr(e: &Expr, depth: usize, out: &mut String) {
    match &e.kind {
        ExprKind::Let { pat, value, body }
            if matches!(pat, Pattern::Wildcard)
                && matches!(value.kind, ExprKind::PhaseBoundary) =>
        {
            indent(depth, out);
            out.push_str("phase;\n");
            print_expr(body, depth, out);
        }
        ExprKind::Let { pat, value, body } => {
            indent(depth, out);
            match pat {
                Pattern::Var(n) => {
                    out.push_str("let %");
                    out.push_str(n);
                }
                Pattern::Wildcard => out.push_str("let %_"),
                Pattern::Tuple(ns) => {
                    out.push_str("let (");
                    for (i, n) in ns.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push('%');
                        out.push_str(n);
                    }
                    out.push(')');
                }
            }
            out.push_str(" = ");
            print_inline(value, out);
            out.push_str(";\n");
            print_expr(body, depth, out);
        }
        _ => {
            indent(depth, out);
            print_inline(e, out);
        }
    }
}

fn print_inline(e: &Expr, out: &mut String) {
    match &e.kind {
        ExprKind::Var(n) => {
            out.push('%');
            out.push_str(n);
        }
        ExprKind::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::FloatLit(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        ExprKind::BoolLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::Let { .. } => {
            out.push_str("{\n");
            print_expr(e, 1, out);
            out.push_str("\n}");
        }
        ExprKind::If { cond, then, els } => {
            out.push_str("if ");
            print_inline(cond, out);
            out.push_str(" {\n");
            print_expr(then, 1, out);
            out.push_str("\n} else {\n");
            print_expr(els, 1, out);
            out.push_str("\n}");
        }
        ExprKind::Match { scrutinee, arms } => {
            out.push_str("match ");
            print_inline(scrutinee, out);
            out.push_str(" {\n");
            for (i, arm) in arms.iter().enumerate() {
                out.push_str("  ");
                out.push_str(&arm.ctor);
                if !arm.binders.is_empty() {
                    out.push('(');
                    for (j, b) in arm.binders.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push('%');
                        out.push_str(b);
                    }
                    out.push(')');
                }
                out.push_str(" => {\n");
                print_expr(&arm.body, 2, out);
                out.push_str("\n  }");
                if i + 1 < arms.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push('}');
        }
        ExprKind::Call { callee, args } => {
            match callee {
                Callee::Global(n) => {
                    out.push('@');
                    out.push_str(n);
                }
                Callee::Ctor(n) => out.push_str(n),
                Callee::Var(n) => {
                    out.push('%');
                    out.push_str(n);
                }
                Callee::Op { name, attrs } => {
                    out.push_str(name);
                    if !attrs.is_empty() {
                        out.push('[');
                        for (i, (k, v)) in attrs.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            let _ = write!(out, "{k}=");
                            match v {
                                AttrValue::Int(x) => {
                                    let _ = write!(out, "{x}");
                                }
                                AttrValue::Float(x) => {
                                    let _ = write!(out, "{x}");
                                }
                                AttrValue::Shape(dims) => {
                                    out.push('(');
                                    for (j, d) in dims.iter().enumerate() {
                                        if j > 0 {
                                            out.push_str(", ");
                                        }
                                        let _ = write!(out, "{d}");
                                    }
                                    out.push(')');
                                }
                            }
                        }
                        out.push(']');
                    }
                }
            }
            if !(matches!(callee, Callee::Ctor(_)) && args.is_empty()) {
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    print_inline(a, out);
                }
                out.push(')');
            }
        }
        ExprKind::Tuple(parts) => {
            out.push('(');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_inline(p, out);
            }
            out.push(')');
        }
        ExprKind::Proj { tuple, index } => {
            print_inline(tuple, out);
            let _ = write!(out, ".{index}");
        }
        ExprKind::Lambda { params, body } => {
            out.push_str("fn(");
            for (i, p) in params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "%{}", p.name);
                if p.ty.is_concrete() {
                    let _ = write!(out, ": {}", p.ty);
                }
            }
            out.push_str(") {\n");
            print_expr(body, 1, out);
            out.push_str("\n}");
        }
        ExprKind::Map { func, list } => {
            out.push_str("map(");
            print_inline(func, out);
            out.push_str(", ");
            print_inline(list, out);
            out.push(')');
        }
        ExprKind::Parallel(parts) => {
            out.push_str("parallel(");
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_inline(p, out);
            }
            out.push(')');
        }
        ExprKind::ScalarBin { op, lhs, rhs } => {
            out.push('(');
            print_inline(lhs, out);
            let _ = write!(out, " {} ", op.symbol());
            print_inline(rhs, out);
            out.push(')');
        }
        ExprKind::ScalarUn { op, operand } => {
            match op {
                ScalarUnOp::Neg => out.push('-'),
                ScalarUnOp::Not => out.push('!'),
                ScalarUnOp::ToFloat => {
                    out.push_str("to_float(");
                    print_inline(operand, out);
                    out.push(')');
                    return;
                }
            }
            print_inline(operand, out);
        }
        ExprKind::Sync { kind, tensor } => {
            out.push_str(match kind {
                SyncKind::Item => "item(",
                SyncKind::Sample => "sample(",
            });
            print_inline(tensor, out);
            out.push(')');
        }
        ExprKind::RandRange { lo, hi } => {
            let _ = write!(out, "rand_range[lo={lo}, hi={hi}]()");
        }
        // A bare phase marker outside a statement position cannot occur in
        // parsed programs; print its (unit-like) value.
        ExprKind::PhaseBoundary => out.push('0'),
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_module;

    #[test]
    fn roundtrip_simple() {
        let src = r#"
            type Tree[a] { Leaf(a), Node(Tree[a], Tree[a]) }
            def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                let %h = matmul(%x, $w);
                relu(%h)
            }
        "#;
        let m1 = parse_module(src).unwrap();
        let printed = super::print_module(&m1);
        let m2 =
            parse_module(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(m1.adts, m2.adts);
        assert_eq!(
            m1.functions.keys().collect::<Vec<_>>(),
            m2.functions.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn roundtrip_control_flow() {
        let src = r#"
            def @f(%xs: List[Tensor[(1, 2)]], %n: Int) -> Int {
                match %xs {
                    Nil => %n,
                    Cons(%h, %t) => {
                        let %v = item(sum_rows(sum_rows(%h)));
                        if %v > 0.5 { @f(%t, %n + 1) } else { @f(%t, %n) }
                    }
                }
            }
            def @main(%xs: List[Tensor[(1, 2)]]) -> Int { @f(%xs, 0) }
        "#;
        let m1 = parse_module(src).unwrap();
        let printed = super::print_module(&m1);
        let m2 =
            parse_module(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(m1.functions.len(), m2.functions.len());
    }

    #[test]
    fn prints_attrs() {
        let src = "def @main(%x: Tensor[(1, 4)]) -> Tensor[(1, 8)] { concat[axis=1](%x, %x) }";
        let printed = super::print_module(&parse_module(src).unwrap());
        assert!(printed.contains("concat[axis=1]"), "{printed}");
    }
}
