//! Type and shape checker.
//!
//! The checker is an *elaboration* pass: besides validating the program it
//! (1) records the type of every expression in [`Module::expr_types`],
//! (2) resolves every tensor-operator call site to its
//!     [`acrobat_tensor::PrimOp`] in [`Module::op_prims`] — including static
//!     shape inference for the operator's result, and
//! (3) rewrites overloaded scalar syntax on tensors (`%a + %b`,
//!     `$bias + matmul(…)` as in the paper's Listing 1) into explicit
//!     operator calls so that downstream passes see a uniform IR.
//!
//! All tensor shapes are static, as in the paper's models (dynamism lives in
//! the *control flow*, not in operator shapes; variable-length data is
//! carried by recursive ADTs).

use std::collections::{BTreeMap, HashMap};

use acrobat_tensor::{PrimOp, Shape};

use crate::ast::*;
use crate::ops;
use crate::{IrError, Result};

/// Type checks and elaborates a module.
///
/// # Errors
///
/// Returns [`IrError::Type`] / [`IrError::Unresolved`] describing the first
/// problem found.
///
/// ```
/// let m = acrobat_ir::parse_module(
///     "def @main(%x: Tensor[(1, 2)]) -> Tensor[(1, 2)] { relu(%x) }",
/// )?;
/// let typed = acrobat_ir::typeck::check_module(m)?;
/// assert!(!typed.op_prims.is_empty());
/// # Ok::<(), acrobat_ir::IrError>(())
/// ```
pub fn check_module(mut module: Module) -> Result<Module> {
    let fn_sigs: BTreeMap<String, (Vec<Type>, Type)> = module
        .functions
        .iter()
        .map(|(name, f)| {
            (name.clone(), (f.params.iter().map(|p| p.ty.clone()).collect(), f.ret.clone()))
        })
        .collect();

    let mut functions = std::mem::take(&mut module.functions);
    let mut ctx = Ctx {
        adts: &module.adts,
        fn_sigs: &fn_sigs,
        expr_types: BTreeMap::new(),
        op_prims: BTreeMap::new(),
        subst: HashMap::new(),
        next_var: module.next_type_var,
        func: String::new(),
        next_expr_id: module.next_expr_id,
    };

    for (name, f) in functions.iter_mut() {
        ctx.func = name.clone();
        let mut env: HashMap<String, Type> = HashMap::new();
        for p in &f.params {
            if !p.ty.is_concrete() {
                return Err(ctx.error(format!(
                    "parameter `{}` of @{} must have a concrete type annotation",
                    p.name, name
                )));
            }
            env.insert(p.name.clone(), p.ty.clone());
        }
        let body_ty = ctx.check(&mut f.body, &mut env)?;
        ctx.unify(&body_ty, &f.ret.clone()).map_err(|e| {
            ctx.error(format!("body of @{name} has type {body_ty}, declared {}: {e}", f.ret))
        })?;
    }

    // Resolve all recorded types through the final substitution.
    let resolved: BTreeMap<ExprId, Type> =
        ctx.expr_types.iter().map(|(id, t)| (*id, ctx.resolve(t))).collect();

    module.functions = functions;
    module.expr_types = resolved;
    module.op_prims = ctx.op_prims;
    module.next_type_var = ctx.next_var;
    module.next_expr_id = ctx.next_expr_id;
    Ok(module)
}

struct Ctx<'a> {
    adts: &'a BTreeMap<String, Adt>,
    fn_sigs: &'a BTreeMap<String, (Vec<Type>, Type)>,
    expr_types: BTreeMap<ExprId, Type>,
    op_prims: BTreeMap<ExprId, PrimOp>,
    subst: HashMap<u32, Type>,
    next_var: u32,
    func: String,
    next_expr_id: u32,
}

impl<'a> Ctx<'a> {
    fn error(&self, msg: String) -> IrError {
        IrError::Type { func: self.func.clone(), msg }
    }

    fn fresh(&mut self) -> Type {
        let v = self.next_var;
        self.next_var += 1;
        Type::Var(v)
    }

    fn fresh_expr_id(&mut self) -> ExprId {
        let id = ExprId(self.next_expr_id);
        self.next_expr_id += 1;
        id
    }

    /// Follows the substitution one level.
    fn shallow(&self, t: &Type) -> Type {
        let mut t = t.clone();
        while let Type::Var(v) = t {
            match self.subst.get(&v) {
                Some(next) => t = next.clone(),
                None => return Type::Var(v),
            }
        }
        t
    }

    /// Fully applies the substitution.
    fn resolve(&self, t: &Type) -> Type {
        match self.shallow(t) {
            Type::Tuple(ts) => Type::Tuple(ts.iter().map(|t| self.resolve(t)).collect()),
            Type::Adt { name, args } => {
                Type::Adt { name, args: args.iter().map(|t| self.resolve(t)).collect() }
            }
            Type::Fn { params, ret } => Type::Fn {
                params: params.iter().map(|t| self.resolve(t)).collect(),
                ret: Box::new(self.resolve(&ret)),
            },
            other => other,
        }
    }

    fn occurs(&self, v: u32, t: &Type) -> bool {
        match self.shallow(t) {
            Type::Var(w) => v == w,
            Type::Tuple(ts) => ts.iter().any(|t| self.occurs(v, t)),
            Type::Adt { args, .. } => args.iter().any(|t| self.occurs(v, t)),
            Type::Fn { params, ret } => {
                params.iter().any(|t| self.occurs(v, t)) || self.occurs(v, &ret)
            }
            _ => false,
        }
    }

    fn unify(&mut self, a: &Type, b: &Type) -> std::result::Result<(), String> {
        let (a, b) = (self.shallow(a), self.shallow(b));
        match (&a, &b) {
            (Type::Var(v), _) => {
                if let Type::Var(w) = b {
                    if w == *v {
                        return Ok(());
                    }
                }
                if self.occurs(*v, &b) {
                    return Err(format!("occurs check failed: ?{v} in {b}"));
                }
                self.subst.insert(*v, b);
                Ok(())
            }
            (_, Type::Var(_)) => self.unify(&b, &a),
            (Type::Tensor(s1), Type::Tensor(s2)) => {
                if s1 == s2 {
                    Ok(())
                } else {
                    Err(format!("tensor shapes differ: {s1} vs {s2}"))
                }
            }
            (Type::Int, Type::Int) | (Type::Float, Type::Float) | (Type::Bool, Type::Bool) => {
                Ok(())
            }
            (Type::Tuple(xs), Type::Tuple(ys)) if xs.len() == ys.len() => {
                for (x, y) in xs.clone().iter().zip(ys.clone().iter()) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (Type::Adt { name: n1, args: a1 }, Type::Adt { name: n2, args: a2 })
                if n1 == n2 && a1.len() == a2.len() =>
            {
                for (x, y) in a1.clone().iter().zip(a2.clone().iter()) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (Type::Fn { params: p1, ret: r1 }, Type::Fn { params: p2, ret: r2 })
                if p1.len() == p2.len() =>
            {
                for (x, y) in p1.clone().iter().zip(p2.clone().iter()) {
                    self.unify(x, y)?;
                }
                self.unify(&r1.clone(), &r2.clone())
            }
            _ => Err(format!("cannot unify {a} with {b}")),
        }
    }

    /// Instantiates an ADT constructor: returns (field types, adt type) with
    /// the ADT's type variables replaced by fresh unification variables.
    fn instantiate_ctor(&mut self, ctor_name: &str) -> Result<(Vec<Type>, Type)> {
        let adt =
            self.adts.values().find(|a| a.ctors.iter().any(|c| c.name == ctor_name)).ok_or_else(
                || IrError::Unresolved { kind: "constructor", name: ctor_name.into() },
            )?;
        let mapping: HashMap<&str, Type> =
            adt.type_vars.iter().map(|v| (v.as_str(), self.fresh())).collect();
        fn subst_ty(t: &Type, mapping: &HashMap<&str, Type>) -> Type {
            match t {
                Type::Adt { name, args }
                    if args.is_empty() && mapping.contains_key(name.as_str()) =>
                {
                    mapping[name.as_str()].clone()
                }
                Type::Adt { name, args } => Type::Adt {
                    name: name.clone(),
                    args: args.iter().map(|a| subst_ty(a, mapping)).collect(),
                },
                Type::Tuple(ts) => Type::Tuple(ts.iter().map(|t| subst_ty(t, mapping)).collect()),
                Type::Fn { params, ret } => Type::Fn {
                    params: params.iter().map(|t| subst_ty(t, mapping)).collect(),
                    ret: Box::new(subst_ty(ret, mapping)),
                },
                other => other.clone(),
            }
        }
        let ctor = adt.ctors.iter().find(|c| c.name == ctor_name).expect("ctor exists");
        let fields = ctor.fields.iter().map(|f| subst_ty(f, &mapping)).collect();
        let adt_ty = Type::Adt {
            name: adt.name.clone(),
            args: adt.type_vars.iter().map(|v| mapping[v.as_str()].clone()).collect(),
        };
        Ok((fields, adt_ty))
    }

    /// Requires `t` to resolve to a tensor type, returning its shape.
    fn as_tensor(&self, t: &Type) -> std::result::Result<Shape, String> {
        match self.shallow(t) {
            Type::Tensor(s) => Ok(s),
            other => Err(format!("expected a tensor, got {other}")),
        }
    }

    fn record(&mut self, id: ExprId, ty: Type) -> Type {
        self.expr_types.insert(id, ty.clone());
        ty
    }

    fn check(&mut self, expr: &mut Expr, env: &mut HashMap<String, Type>) -> Result<Type> {
        let id = expr.id;
        let ty = match &mut expr.kind {
            ExprKind::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| IrError::Unresolved { kind: "variable", name: name.clone() })?,
            ExprKind::IntLit(_) => Type::Int,
            ExprKind::FloatLit(_) => Type::Float,
            ExprKind::BoolLit(_) => Type::Bool,
            ExprKind::PhaseBoundary => Type::Int,
            ExprKind::RandRange { lo, hi } => {
                if lo > hi {
                    return Err(self.error(format!("rand_range: lo {lo} > hi {hi}")));
                }
                Type::Int
            }
            ExprKind::Let { pat, value, body } => {
                let vty = self.check(value, env)?;
                let mut shadowed: Vec<(String, Option<Type>)> = Vec::new();
                match pat {
                    Pattern::Var(name) => {
                        shadowed.push((name.clone(), env.insert(name.clone(), vty)));
                    }
                    Pattern::Wildcard => {}
                    Pattern::Tuple(names) => {
                        let parts: Vec<Type> = (0..names.len()).map(|_| self.fresh()).collect();
                        self.unify(&vty, &Type::Tuple(parts.clone()))
                            .map_err(|e| self.error(format!("tuple pattern: {e}")))?;
                        for (n, t) in names.iter().zip(parts) {
                            shadowed.push((n.clone(), env.insert(n.clone(), t)));
                        }
                    }
                }
                let bty = self.check(body, env)?;
                for (name, old) in shadowed {
                    match old {
                        Some(t) => env.insert(name, t),
                        None => env.remove(&name),
                    };
                }
                bty
            }
            ExprKind::If { cond, then, els } => {
                let cty = self.check(cond, env)?;
                self.unify(&cty, &Type::Bool)
                    .map_err(|e| self.error(format!("if condition: {e}")))?;
                let tty = self.check(then, env)?;
                let ety = self.check(els, env)?;
                self.unify(&tty, &ety)
                    .map_err(|e| self.error(format!("if branches disagree: {e}")))?;
                tty
            }
            ExprKind::Match { scrutinee, arms } => {
                let sty = self.check(scrutinee, env)?;
                if arms.is_empty() {
                    return Err(self.error("match with no arms".into()));
                }
                // All arms must belong to one ADT; check exhaustiveness.
                let first_adt = self
                    .adts
                    .values()
                    .find(|a| a.ctors.iter().any(|c| c.name == arms[0].ctor))
                    .ok_or_else(|| IrError::Unresolved {
                        kind: "constructor",
                        name: arms[0].ctor.clone(),
                    })?
                    .name
                    .clone();
                let adt = self.adts[&first_adt].clone();
                let mut covered: Vec<&str> = Vec::new();
                let result = self.fresh();
                for arm in arms.iter_mut() {
                    let ctor = adt.ctors.iter().find(|c| c.name == arm.ctor).ok_or_else(|| {
                        self.error(format!(
                            "match arm `{}` is not a constructor of `{}`",
                            arm.ctor, adt.name
                        ))
                    })?;
                    if covered.contains(&arm.ctor.as_str()) {
                        return Err(self.error(format!("duplicate match arm `{}`", arm.ctor)));
                    }
                    covered.push(&arm.ctor);
                    if ctor.fields.len() != arm.binders.len() {
                        return Err(self.error(format!(
                            "constructor `{}` has {} fields, pattern binds {}",
                            arm.ctor,
                            ctor.fields.len(),
                            arm.binders.len()
                        )));
                    }
                    let (fields, adt_ty) = self.instantiate_ctor(&arm.ctor)?;
                    self.unify(&sty, &adt_ty)
                        .map_err(|e| self.error(format!("match scrutinee: {e}")))?;
                    let mut shadowed = Vec::new();
                    for (binder, fty) in arm.binders.iter().zip(fields) {
                        shadowed.push((binder.clone(), env.insert(binder.clone(), fty)));
                    }
                    let aty = self.check(&mut arm.body, env)?;
                    self.unify(&aty, &result)
                        .map_err(|e| self.error(format!("match arms disagree: {e}")))?;
                    for (name, old) in shadowed {
                        match old {
                            Some(t) => env.insert(name, t),
                            None => env.remove(&name),
                        };
                    }
                }
                if covered.len() != adt.ctors.len() {
                    let missing: Vec<&str> = adt
                        .ctors
                        .iter()
                        .map(|c| c.name.as_str())
                        .filter(|c| !covered.contains(c))
                        .collect();
                    return Err(self.error(format!(
                        "non-exhaustive match on `{}`: missing {missing:?}",
                        adt.name
                    )));
                }
                result
            }
            ExprKind::Call { callee, args } => {
                let arg_tys: Vec<Type> = {
                    let mut tys = Vec::with_capacity(args.len());
                    for a in args.iter_mut() {
                        tys.push(self.check(a, env)?);
                    }
                    tys
                };
                match callee {
                    Callee::Global(name) => {
                        let (params, ret) = self
                            .fn_sigs
                            .get(name)
                            .ok_or_else(|| IrError::Unresolved {
                                kind: "function",
                                name: name.clone(),
                            })?
                            .clone();
                        if params.len() != arg_tys.len() {
                            return Err(self.error(format!(
                                "@{name} takes {} arguments, got {}",
                                params.len(),
                                arg_tys.len()
                            )));
                        }
                        for (i, (p, a)) in params.iter().zip(&arg_tys).enumerate() {
                            self.unify(a, p)
                                .map_err(|e| self.error(format!("argument {i} of @{name}: {e}")))?;
                        }
                        ret
                    }
                    Callee::Ctor(name) => {
                        let (fields, adt_ty) = self.instantiate_ctor(name)?;
                        if fields.len() != arg_tys.len() {
                            return Err(self.error(format!(
                                "constructor `{name}` takes {} fields, got {}",
                                fields.len(),
                                arg_tys.len()
                            )));
                        }
                        for (i, (f, a)) in fields.iter().zip(&arg_tys).enumerate() {
                            self.unify(a, f)
                                .map_err(|e| self.error(format!("field {i} of `{name}`: {e}")))?;
                        }
                        adt_ty
                    }
                    Callee::Var(name) => {
                        let fty = env.get(name).cloned().ok_or_else(|| IrError::Unresolved {
                            kind: "variable",
                            name: name.clone(),
                        })?;
                        let ret = self.fresh();
                        let want = Type::Fn { params: arg_tys.clone(), ret: Box::new(ret.clone()) };
                        self.unify(&fty, &want)
                            .map_err(|e| self.error(format!("calling `%{name}`: {e}")))?;
                        ret
                    }
                    Callee::Op { name, attrs } => {
                        let prim = ops::build_prim(name, attrs)
                            .map_err(|e| self.error(format!("operator `{name}`: {e}")))?;
                        let mut shapes = Vec::with_capacity(arg_tys.len());
                        for (i, t) in arg_tys.iter().enumerate() {
                            shapes.push(self.as_tensor(t).map_err(|e| {
                                self.error(format!("argument {i} of `{name}`: {e}"))
                            })?);
                        }
                        let shape_refs: Vec<&Shape> = shapes.iter().collect();
                        let out = acrobat_tensor::infer_shape(&prim, &shape_refs)
                            .map_err(|e| self.error(format!("operator `{name}`: {e}")))?;
                        self.op_prims.insert(id, prim);
                        Type::Tensor(out)
                    }
                }
            }
            ExprKind::Tuple(parts) => {
                let mut tys = Vec::with_capacity(parts.len());
                for p in parts.iter_mut() {
                    tys.push(self.check(p, env)?);
                }
                Type::Tuple(tys)
            }
            ExprKind::Proj { tuple, index } => {
                let index = *index;
                let tty = self.check(tuple, env)?;
                match self.shallow(&tty) {
                    Type::Tuple(parts) => parts.get(index).cloned().ok_or_else(|| {
                        self.error(format!("tuple has {} fields, no index {index}", parts.len()))
                    })?,
                    other => return Err(self.error(format!("projection on non-tuple {other}"))),
                }
            }
            ExprKind::Lambda { params, body } => {
                let mut shadowed = Vec::new();
                for p in params.iter() {
                    shadowed.push((p.name.clone(), env.insert(p.name.clone(), p.ty.clone())));
                }
                let rty = self.check(body, env)?;
                for (name, old) in shadowed {
                    match old {
                        Some(t) => env.insert(name, t),
                        None => env.remove(&name),
                    };
                }
                Type::Fn {
                    params: params.iter().map(|p| p.ty.clone()).collect(),
                    ret: Box::new(rty),
                }
            }
            ExprKind::Map { func, list } => {
                // Check the list first so that an inline lambda's parameter
                // type can be inferred from the element type before its body
                // is checked.
                let lty = self.check(list, env)?;
                let elem = self.fresh();
                self.unify(&lty, &Type::list(elem.clone()))
                    .map_err(|e| self.error(format!("map over non-list: {e}")))?;
                if let ExprKind::Lambda { params, .. } = &func.kind {
                    if params.len() == 1 {
                        self.unify(&params[0].ty, &elem)
                            .map_err(|e| self.error(format!("map function parameter: {e}")))?;
                    }
                }
                let fty = self.check(func, env)?;
                let out = self.fresh();
                let want = Type::Fn { params: vec![elem], ret: Box::new(out.clone()) };
                self.unify(&fty, &want).map_err(|e| self.error(format!("map function: {e}")))?;
                Type::list(out)
            }
            ExprKind::Parallel(parts) => {
                let mut tys = Vec::with_capacity(parts.len());
                for p in parts.iter_mut() {
                    tys.push(self.check(p, env)?);
                }
                Type::Tuple(tys)
            }
            ExprKind::ScalarBin { op, lhs, rhs } => {
                let op = *op;
                let lty = self.check(lhs, env)?;
                let rty = self.check(rhs, env)?;
                let l = self.shallow(&lty);
                let r = self.shallow(&rty);
                // Overloading: arithmetic on tensors elaborates to a tensor
                // operator call (the paper's Listing 1 writes `bias + dense(…)`).
                if matches!(l, Type::Tensor(_)) || matches!(r, Type::Tensor(_)) {
                    let prim = match op {
                        ScalarBinOp::Add => PrimOp::Add,
                        ScalarBinOp::Sub => PrimOp::Sub,
                        ScalarBinOp::Mul => PrimOp::Mul,
                        ScalarBinOp::Div => PrimOp::Div,
                        _ => {
                            return Err(self.error(format!(
                                "operator `{}` is not defined on tensors",
                                op.symbol()
                            )))
                        }
                    };
                    let ls = self.as_tensor(&l).map_err(|e| self.error(e))?;
                    let rs = self.as_tensor(&r).map_err(|e| self.error(e))?;
                    let out = acrobat_tensor::infer_shape(&prim, &[&ls, &rs])
                        .map_err(|e| self.error(format!("tensor `{}`: {e}", op.symbol())))?;
                    // Elaborate in place: ScalarBin → Call(Op).
                    let name = prim.name().to_string();
                    self.op_prims.insert(id, prim);
                    let lhs_e = std::mem::replace(
                        lhs.as_mut(),
                        Expr { id: self.fresh_expr_id(), kind: ExprKind::IntLit(0) },
                    );
                    let rhs_e = std::mem::replace(
                        rhs.as_mut(),
                        Expr { id: self.fresh_expr_id(), kind: ExprKind::IntLit(0) },
                    );
                    expr.kind = ExprKind::Call {
                        callee: Callee::Op { name, attrs: BTreeMap::new() },
                        args: vec![lhs_e, rhs_e],
                    };
                    return Ok(self.record(id, Type::Tensor(out)));
                }
                self.unify(&lty, &rty)
                    .map_err(|e| self.error(format!("`{}` operands: {e}", op.symbol())))?;
                let operand = self.shallow(&lty);
                match op {
                    ScalarBinOp::And | ScalarBinOp::Or => {
                        self.unify(&operand, &Type::Bool)
                            .map_err(|e| self.error(format!("`{}`: {e}", op.symbol())))?;
                        Type::Bool
                    }
                    ScalarBinOp::Add | ScalarBinOp::Sub | ScalarBinOp::Mul | ScalarBinOp::Div => {
                        match operand {
                            Type::Int | Type::Float => operand,
                            Type::Var(_) => {
                                // Default numeric literals to Int.
                                self.unify(&operand, &Type::Int).map_err(|e| self.error(e))?;
                                Type::Int
                            }
                            other => {
                                return Err(self
                                    .error(format!("`{}` is not defined on {other}", op.symbol())))
                            }
                        }
                    }
                    _ => {
                        match operand {
                            Type::Int | Type::Float | Type::Bool => {}
                            Type::Var(_) => {
                                self.unify(&operand, &Type::Int).map_err(|e| self.error(e))?;
                            }
                            other => {
                                return Err(self
                                    .error(format!("`{}` is not defined on {other}", op.symbol())))
                            }
                        }
                        Type::Bool
                    }
                }
            }
            ExprKind::ScalarUn { op, operand } => {
                let op = *op;
                let oty = self.check(operand, env)?;
                match op {
                    ScalarUnOp::Neg => {
                        let t = self.shallow(&oty);
                        match t {
                            Type::Int | Type::Float => t,
                            other => {
                                return Err(self.error(format!("`-` is not defined on {other}")))
                            }
                        }
                    }
                    ScalarUnOp::Not => {
                        self.unify(&oty, &Type::Bool)
                            .map_err(|e| self.error(format!("`!`: {e}")))?;
                        Type::Bool
                    }
                    ScalarUnOp::ToFloat => {
                        self.unify(&oty, &Type::Int)
                            .map_err(|e| self.error(format!("`to_float`: {e}")))?;
                        Type::Float
                    }
                }
            }
            ExprKind::Sync { kind, tensor } => {
                let kind = *kind;
                let tty = self.check(tensor, env)?;
                let shape = self.as_tensor(&tty).map_err(|e| self.error(e))?;
                if kind == SyncKind::Item && shape.numel() != 1 {
                    return Err(self.error(format!(
                        "`item` requires a single-element tensor, got shape {shape}"
                    )));
                }
                Type::Float
            }
        };
        Ok(self.record(id, ty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    fn check(src: &str) -> Result<Module> {
        check_module(parse_module(src)?)
    }

    #[test]
    fn simple_tensor_fn() {
        let m = check(
            "def @main($w: Tensor[(2, 3)], %x: Tensor[(1, 2)]) -> Tensor[(1, 3)] { matmul(%x, $w) }",
        )
        .unwrap();
        assert_eq!(m.op_prims.len(), 1);
        assert!(m.op_prims.values().any(|p| *p == PrimOp::MatMul));
    }

    #[test]
    fn shape_mismatch_caught() {
        let err = check(
            "def @main($w: Tensor[(3, 3)], %x: Tensor[(1, 2)]) -> Tensor[(1, 3)] { matmul(%x, $w) }",
        )
        .unwrap_err();
        assert!(matches!(err, IrError::Type { .. }), "{err}");
    }

    #[test]
    fn return_type_mismatch_caught() {
        let err =
            check("def @main(%x: Tensor[(1, 2)]) -> Tensor[(1, 3)] { relu(%x) }").unwrap_err();
        assert!(err.to_string().contains("declared"));
    }

    #[test]
    fn tensor_plus_elaborates_to_add() {
        let m = check(
            "def @main(%a: Tensor[(1, 4)], %b: Tensor[(1, 4)]) -> Tensor[(1, 4)] { %a + %b }",
        )
        .unwrap();
        let body = &m.functions["main"].body;
        assert!(matches!(
            &body.kind,
            ExprKind::Call { callee: Callee::Op { name, .. }, .. } if name == "add"
        ));
        assert_eq!(m.op_prims[&body.id], PrimOp::Add);
    }

    #[test]
    fn bias_broadcast_via_plus() {
        let m = check(
            "def @main($b: Tensor[(1, 4)], %x: Tensor[(2, 4)]) -> Tensor[(2, 4)] { $b + %x }",
        );
        assert!(m.is_ok());
    }

    #[test]
    fn recursive_list_fn() {
        let src = r#"
            def @len(%xs: List[Tensor[(1, 2)]]) -> Int {
                match %xs {
                    Nil => 0,
                    Cons(%h, %t) => 1 + @len(%t)
                }
            }
            def @main(%xs: List[Tensor[(1, 2)]]) -> Int { @len(%xs) }
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn non_exhaustive_match_rejected() {
        let src = r#"
            def @main(%xs: List[Int]) -> Int {
                match %xs { Nil => 0 }
            }
        "#;
        let err = check(src).unwrap_err();
        assert!(err.to_string().contains("non-exhaustive"), "{err}");
    }

    #[test]
    fn match_binder_arity_rejected() {
        let src = r#"
            def @main(%xs: List[Int]) -> Int {
                match %xs { Nil => 0, Cons(%h) => %h }
            }
        "#;
        assert!(check(src).is_err());
    }

    #[test]
    fn map_with_lambda_infers_param() {
        let src = r#"
            def @main(%xs: List[Tensor[(1, 2)]]) -> List[Tensor[(1, 2)]] {
                map(fn(%p) { relu(%p) }, %xs)
            }
        "#;
        let m = check(src).unwrap();
        // The lambda parameter type must have been inferred as the tensor.
        let mut found = false;
        crate::ast::visit_exprs(&m.functions["main"].body, &mut |e| {
            if let ExprKind::Var(n) = &e.kind {
                if n == "p" {
                    assert_eq!(m.type_of(e.id), &Type::tensor(&[1, 2]));
                    found = true;
                }
            }
        });
        assert!(found);
    }

    #[test]
    fn map_global_sugar_typechecks() {
        let src = r#"
            def @f(%x: Tensor[(1, 2)]) -> Tensor[(1, 2)] { relu(%x) }
            def @main(%xs: List[Tensor[(1, 2)]]) -> List[Tensor[(1, 2)]] { map(@f, %xs) }
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn item_requires_single_element() {
        assert!(check("def @main(%x: Tensor[(1, 1)]) -> Float { item(%x) }").is_ok());
        let err = check("def @main(%x: Tensor[(1, 2)]) -> Float { item(%x) }").unwrap_err();
        assert!(err.to_string().contains("single-element"), "{err}");
        // `sample` has no such restriction.
        assert!(check("def @main(%x: Tensor[(1, 2)]) -> Float { sample(%x) }").is_ok());
    }

    #[test]
    fn parallel_yields_tuple() {
        let src = r#"
            def @f(%x: Int) -> Int { %x + 1 }
            def @main(%x: Int) -> Int {
                let (%a, %b) = parallel(@f(%x), @f(%x));
                %a + %b
            }
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(matches!(
            check("def @main(%x: Int) -> Int { @nope(%x) }").unwrap_err(),
            IrError::Unresolved { kind: "function", .. }
        ));
        assert!(matches!(
            check("def @main(%x: Int) -> Int { %y }").unwrap_err(),
            IrError::Unresolved { kind: "variable", .. }
        ));
        assert!(check("def @main(%x: Tensor[(1, 1)]) -> Tensor[(1, 1)] { blah(%x) }").is_err());
    }

    #[test]
    fn if_condition_must_be_bool() {
        assert!(check("def @main(%x: Int) -> Int { if %x { 1 } else { 2 } }").is_err());
        assert!(check("def @main(%x: Int) -> Int { if %x > 0 { 1 } else { 2 } }").is_ok());
    }

    #[test]
    fn mixed_int_float_arith_rejected() {
        let err = check("def @main(%x: Int) -> Float { %x + 0.5 }").unwrap_err();
        assert!(err.to_string().contains("operands"), "{err}");
        assert!(check("def @main(%x: Int) -> Float { to_float(%x) + 0.5 }").is_ok());
    }

    #[test]
    fn tuple_projection_and_pattern() {
        let src = r#"
            def @main(%x: (Int, Bool)) -> Int {
                let (%a, %b) = %x;
                if %b { %a } else { %x.0 }
            }
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn concat_axis_shapes() {
        let ok = check(
            "def @main(%a: Tensor[(1, 4)], %b: Tensor[(1, 4)]) -> Tensor[(1, 8)] { concat[axis=1](%a, %b) }",
        );
        assert!(ok.is_ok());
        let bad = check(
            "def @main(%a: Tensor[(1, 4)], %b: Tensor[(2, 4)]) -> Tensor[(1, 8)] { concat[axis=1](%a, %b) }",
        );
        assert!(bad.is_err());
    }

    #[test]
    fn everything_reachable_is_typed() {
        let src = r#"
            def @main(%xs: List[Tensor[(1, 2)]]) -> List[Tensor[(1, 2)]] {
                map(fn(%p) { relu(%p) }, %xs)
            }
        "#;
        let m = check(src).unwrap();
        crate::ast::visit_exprs(&m.functions["main"].body, &mut |e| {
            assert!(m.expr_types.contains_key(&e.id), "untyped expr {:?}", e.kind);
        });
    }
}
