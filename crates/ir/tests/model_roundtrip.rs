//! The pretty printer and parser round-trip on realistic, full-scale
//! programs: print(parse(src)) re-parses to a structurally equal module,
//! and printing is a fixpoint.

use acrobat_ir::{parse_module, print_module, typeck};

/// A program exercising every surface construct at once.
const KITCHEN_SINK: &str = r#"
    type Tree[a] { Leaf(a), Node(Tree[a], Tree[a]) }

    def @enc(%t: Tree[(Tensor[(1, 8)], Tensor[(8, 8)])],
             $w: Tensor[(16, 8)], $b: Tensor[(1, 8)]) -> (Tensor[(1, 8)], Tensor[(8, 8)]) {
        match %t {
            Leaf(%p) => %p,
            Node(%l, %r) => {
                let (%lv, %rv) = parallel(@enc(%l, $w, $b), @enc(%r, $w, $b));
                let %c = concat[axis=1](matmul(%lv.0, %rv.1), matmul(%rv.0, %lv.1));
                let %v = tanh(add(matmul(%c, $w), $b));
                (%v, add(%lv.1, %rv.1))
            }
        }
    }

    def @steps(%h: Tensor[(1, 8)], %n: Int, $w8: Tensor[(8, 8)]) -> Tensor[(1, 8)] {
        if %n <= 0 { %h } else {
            let %v = sample(%h);
            if %v < 0.5 {
                @steps(sigmoid(matmul(%h, $w8)), %n - 1, $w8)
            } else {
                let %k = rand_range[lo=1, hi=3]();
                @steps(%h, %n - %k, $w8)
            }
        }
    }

    def @main($w: Tensor[(16, 8)], $b: Tensor[(1, 8)], $w8: Tensor[(8, 8)],
              $wc: Tensor[(8, 2)],
              %t: Tree[(Tensor[(1, 8)], Tensor[(8, 8)])],
              %xs: List[Tensor[(1, 8)]]) -> List[Tensor[(1, 2)]] {
        let (%v, %m) = @enc(%t, $w, $b);
        let %h = @steps(%v, 4, $w8);
        phase;
        map(fn(%p) { relu(add(matmul(add(%p, %h), $wc), zeros[shape=(1, 2)]())) }, %xs)
    }
"#;

#[test]
fn kitchen_sink_roundtrips() {
    let m1 = parse_module(KITCHEN_SINK).unwrap();
    let p1 = print_module(&m1);
    let m2 = parse_module(&p1).unwrap_or_else(|e| panic!("reparse failed: {e}\n{p1}"));
    let p2 = print_module(&m2);
    assert_eq!(p1, p2, "printing is a fixpoint");
    assert_eq!(m1.adts, m2.adts);
    // Structural equality of functions modulo expression ids: compare via
    // the printer, already established by p1 == p2.
    assert_eq!(m1.functions.len(), m2.functions.len());
    // The round-tripped module still type checks identically.
    typeck::check_module(m2).unwrap();
}

#[test]
fn all_evaluation_models_roundtrip() {
    // The actual model sources used in the benchmarks, at small dimensions.
    let sources: Vec<(&str, String)> = vec![
        ("treelstm", acrobat_models_sources::treelstm()),
        ("mvrnn", acrobat_models_sources::mvrnn()),
        ("birnn", acrobat_models_sources::birnn()),
        ("nestedrnn", acrobat_models_sources::nestedrnn()),
        ("drnn", acrobat_models_sources::drnn()),
        ("berxit", acrobat_models_sources::berxit()),
        ("stackrnn", acrobat_models_sources::stackrnn()),
    ];
    for (name, src) in sources {
        let m1 = parse_module(&src).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let printed = print_module(&m1);
        let m2 =
            parse_module(&printed).unwrap_or_else(|e| panic!("{name}: reparse: {e}\n{printed}"));
        assert_eq!(print_module(&m2), printed, "{name}: printing is not a fixpoint");
        typeck::check_module(m2).unwrap_or_else(|e| panic!("{name}: typeck: {e}"));
    }
}

/// Inline copies of the model sources (this crate cannot depend on
/// `acrobat-models`, which sits above it in the dependency graph).
mod acrobat_models_sources {
    pub fn treelstm() -> String {
        template(include_str!("sources/treelstm.txt"))
    }
    pub fn mvrnn() -> String {
        template(include_str!("sources/mvrnn.txt"))
    }
    pub fn birnn() -> String {
        template(include_str!("sources/birnn.txt"))
    }
    pub fn nestedrnn() -> String {
        template(include_str!("sources/nestedrnn.txt"))
    }
    pub fn drnn() -> String {
        template(include_str!("sources/drnn.txt"))
    }
    pub fn berxit() -> String {
        template(include_str!("sources/berxit.txt"))
    }
    pub fn stackrnn() -> String {
        template(include_str!("sources/stackrnn.txt"))
    }
    fn template(s: &str) -> String {
        s.to_string()
    }
}
