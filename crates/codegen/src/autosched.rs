//! A simulation of TVM's auto-scheduler (Ansor) as used by ACROBAT (§D.1).
//!
//! The real system searches, per kernel, over schedules (tilings,
//! vectorization, unrolling) evaluated on hardware; kernel quality improves
//! with the iteration budget, and ACROBAT prioritizes the budget across
//! kernels by their invocation frequency — measured via profile-guided
//! optimization (PGO) or estimated statically (Table 9 quantifies the PGO
//! benefit).
//!
//! This module reproduces that *workflow* against an analytical model: every
//! kernel has a hidden optimal schedule (derived deterministically from its
//! structural signature); random search with more iterations lands closer to
//! the optimum; the resulting [`Schedule::quality`] ∈ (0, 1] divides into
//! the kernel's ideal execution time in the device cost model.  Variable
//! batch extents are handled as in the paper: the schedule is tuned for one
//! static extent and applied to all extents, with DietCode-style local
//! padding optionally removing the misalignment penalty.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::kernel::KernelId;
use crate::library::KernelLibrary;

/// An optimized kernel schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Tile size of the batch loop.
    pub tile: u32,
    /// Vectorization width.
    pub vector: u32,
    /// Unroll factor.
    pub unroll: u32,
    /// Schedule quality in `(0, 1]`; execution time scales as `1/quality`.
    pub quality: f64,
    /// Batch extent the schedule was tuned for (§D.1 "Handling Variable
    /// Loop Extents": the variable-extent kernel reuses this schedule).
    pub tuned_batch: usize,
    /// Whether DietCode-style local padding is applied when the dynamic
    /// extent misaligns with the tile.
    pub local_padding: bool,
    /// Iterations the search spent on this kernel.
    pub iterations_spent: u64,
}

/// Quality of a completely unoptimized kernel (no auto-scheduling).
pub const UNTUNED_QUALITY: f64 = 0.25;

impl Schedule {
    /// The schedule of a kernel that was never auto-scheduled.
    pub fn untuned() -> Schedule {
        Schedule {
            tile: 1,
            vector: 1,
            unroll: 1,
            quality: UNTUNED_QUALITY,
            tuned_batch: 1,
            local_padding: false,
            iterations_spent: 0,
        }
    }

    /// Effective quality at a dynamic batch extent.
    ///
    /// When the extent is not a multiple of the tile, the generated kernel
    /// needs bounds checks, which the paper notes are "severely detrimental"
    /// unless eliminated by local padding / partitioning (§D.1).
    pub fn quality_at(&self, batch: usize) -> f64 {
        let tile = self.tile.max(1) as usize;
        if batch.is_multiple_of(tile) {
            self.quality
        } else if self.local_padding {
            self.quality * 0.97
        } else {
            self.quality * 0.72
        }
    }
}

/// Options for an auto-scheduling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleOptions {
    /// Total search iterations across all kernels.
    pub iterations: u64,
    /// Search seed.
    pub seed: u64,
    /// Batch extent to tune for.
    pub tuned_batch: usize,
    /// Apply DietCode local padding for misaligned dynamic extents.
    pub local_padding: bool,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions { iterations: 500, seed: 0, tuned_batch: 64, local_padding: true }
    }
}

const TILES: [u32; 6] = [1, 2, 4, 8, 16, 32];
const VECTORS: [u32; 4] = [1, 2, 4, 8];
const UNROLLS: [u32; 3] = [1, 2, 4];
const INNER_TILES: [u32; 6] = [1, 2, 4, 8, 16, 32];
const THREADS: [u32; 6] = [32, 64, 128, 256, 512, 1024];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A point in the schedule space: (tile, vector, unroll, inner tile,
/// thread-block size).  6·4·3·6·6 = 2592 candidates — large enough that a
/// small search budget cannot exhaust it, which is what gives the PGO
/// prioritization of Table 9 its effect.
type Candidate = (u32, u32, u32, u32, u32);

/// The hidden optimum of a kernel's schedule space.
fn optimum(signature: &str, seed: u64) -> Candidate {
    let mut st = hash_str(signature) ^ seed.wrapping_mul(0x9E3779B97F4A7C15);
    (
        TILES[(splitmix64(&mut st) % TILES.len() as u64) as usize],
        VECTORS[(splitmix64(&mut st) % VECTORS.len() as u64) as usize],
        UNROLLS[(splitmix64(&mut st) % UNROLLS.len() as u64) as usize],
        INNER_TILES[(splitmix64(&mut st) % INNER_TILES.len() as u64) as usize],
        THREADS[(splitmix64(&mut st) % THREADS.len() as u64) as usize],
    )
}

fn sample_candidate(st: &mut u64) -> Candidate {
    (
        TILES[(splitmix64(st) % TILES.len() as u64) as usize],
        VECTORS[(splitmix64(st) % VECTORS.len() as u64) as usize],
        UNROLLS[(splitmix64(st) % UNROLLS.len() as u64) as usize],
        INNER_TILES[(splitmix64(st) % INNER_TILES.len() as u64) as usize],
        THREADS[(splitmix64(st) % THREADS.len() as u64) as usize],
    )
}

/// Quality of a candidate relative to the hidden optimum: multiplicative
/// penalties per log2 step of distance in each dimension.
fn candidate_quality(cand: Candidate, opt: Candidate) -> f64 {
    const MAX_QUALITY: f64 = 0.95;
    let dist = |a: u32, b: u32| ((a as f64).log2() - (b as f64).log2()).abs();
    let factor = |d: f64| 1.0 / (1.0 + 0.22 * d);
    MAX_QUALITY
        * factor(dist(cand.0, opt.0))
        * factor(dist(cand.1, opt.1))
        * factor(dist(cand.2, opt.2))
        * factor(dist(cand.3, opt.3))
        * factor(dist(cand.4, opt.4))
}

/// Runs the simulated auto-scheduler over every kernel of the library.
///
/// `priorities` maps kernels to their (profiled or estimated) invocation
/// counts; when present, the iteration budget is divided proportionally —
/// this is the PGO mode of §D.1.  Without priorities the budget is uniform.
pub fn autoschedule(
    library: &mut KernelLibrary,
    options: ScheduleOptions,
    priorities: Option<&BTreeMap<KernelId, u64>>,
) {
    let ids: Vec<KernelId> = library.iter().map(|k| k.id).collect();
    if ids.is_empty() {
        return;
    }
    // Budget allocation.
    let weights: Vec<f64> = ids
        .iter()
        .map(|id| match priorities {
            Some(p) => (*p.get(id).unwrap_or(&1)).max(1) as f64,
            None => 1.0,
        })
        .collect();
    let total_w: f64 = weights.iter().sum();
    for (id, w) in ids.iter().zip(&weights) {
        let budget = ((options.iterations as f64) * w / total_w).round() as u64;
        let program = library.kernel_mut(*id);
        let sig = program.signature();
        let opt = optimum(&sig, options.seed);
        let mut st = hash_str(&sig) ^ options.seed.wrapping_add(1).wrapping_mul(0x2545F4914F6CDD1D);
        let mut best = Schedule::untuned();
        best.tuned_batch = options.tuned_batch;
        best.local_padding = options.local_padding;
        for _ in 0..budget {
            let cand = sample_candidate(&mut st);
            let q = candidate_quality(cand, opt);
            if q > best.quality {
                best = Schedule {
                    tile: cand.0,
                    vector: cand.1,
                    unroll: cand.2,
                    quality: q,
                    tuned_batch: options.tuned_batch,
                    local_padding: options.local_padding,
                    iterations_spent: 0,
                };
            }
        }
        best.iterations_spent = budget;
        program.schedule = Some(best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_analysis::{analyze, AnalysisOptions};
    use acrobat_ir::{parse_module, typeck};

    fn library(src: &str) -> KernelLibrary {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let a = analyze(m, AnalysisOptions::default()).unwrap();
        KernelLibrary::build(&a)
    }

    const TWO_KERNELS: &str = "def @main($w1: Tensor[(4, 4)], $w2: Tensor[(4, 8)], %x: Tensor[(1, 4)]) -> Tensor[(1, 8)] {
        matmul(relu(matmul(%x, $w1)), $w2)
    }";

    #[test]
    fn more_iterations_never_worse() {
        let mut prev = 0.0;
        for iters in [0u64, 10, 100, 1000] {
            let mut lib = library(TWO_KERNELS);
            autoschedule(
                &mut lib,
                ScheduleOptions { iterations: iters, ..Default::default() },
                None,
            );
            let q: f64 = lib.iter().map(|k| k.schedule.unwrap().quality).sum();
            assert!(q >= prev - 1e-12, "quality should not regress: {q} < {prev}");
            prev = q;
        }
    }

    #[test]
    fn untuned_quality_is_floor() {
        let mut lib = library(TWO_KERNELS);
        autoschedule(&mut lib, ScheduleOptions { iterations: 0, ..Default::default() }, None);
        for k in lib.iter() {
            assert_eq!(k.schedule.unwrap().quality, UNTUNED_QUALITY);
        }
    }

    #[test]
    fn pgo_prioritizes_hot_kernel() {
        // Give kernel 0 a 30× priority (the NestedRNN inner/outer ratio);
        // with a small budget, the hot kernel must end up at least as good
        // as under uniform allocation.
        let mut uniform = library(TWO_KERNELS);
        autoschedule(&mut uniform, ScheduleOptions { iterations: 20, ..Default::default() }, None);
        let mut pgo = library(TWO_KERNELS);
        let mut prio = BTreeMap::new();
        prio.insert(KernelId(0), 30u64);
        prio.insert(KernelId(1), 1u64);
        autoschedule(
            &mut pgo,
            ScheduleOptions { iterations: 20, ..Default::default() },
            Some(&prio),
        );
        let hot_uniform = uniform.kernel(KernelId(0)).schedule.unwrap();
        let hot_pgo = pgo.kernel(KernelId(0)).schedule.unwrap();
        assert!(hot_pgo.iterations_spent > hot_uniform.iterations_spent);
        assert!(hot_pgo.quality >= hot_uniform.quality);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut lib = library(TWO_KERNELS);
            autoschedule(
                &mut lib,
                ScheduleOptions { iterations: 50, seed, ..Default::default() },
                None,
            );
            lib.iter().map(|k| k.schedule.unwrap().quality).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_eq!(run(8), run(8));
    }

    #[test]
    fn misaligned_extent_penalty_and_padding() {
        let s = Schedule {
            tile: 8,
            vector: 1,
            unroll: 1,
            quality: 0.9,
            tuned_batch: 64,
            local_padding: false,
            iterations_spent: 0,
        };
        assert_eq!(s.quality_at(64), 0.9);
        assert!(s.quality_at(63) < 0.7);
        let padded = Schedule { local_padding: true, ..s };
        assert!(padded.quality_at(63) > 0.85, "local padding recovers quality");
    }
}
