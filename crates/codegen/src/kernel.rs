//! Kernel programs: the compiled form of a fusion group.

use acrobat_analysis::{AnalysisResult, ArgClass};
use acrobat_ir::{ExprId, Type};
use acrobat_tensor::{PrimOp, Shape};

/// Identifier of a generated kernel within a [`crate::KernelLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub u32);

/// A virtual register within a kernel program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegId(pub u32);

/// One instruction of a kernel program.
#[derive(Debug, Clone, PartialEq)]
pub struct KInstr {
    /// The primitive operator.
    pub op: PrimOp,
    /// Input registers.
    pub args: Vec<RegId>,
    /// Destination register.
    pub out: RegId,
    /// Result shape (per instance).
    pub shape: Shape,
}

/// An external input of a kernel program.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelInput {
    /// Register the input is loaded into.
    pub reg: RegId,
    /// Shared (one tensor per batch) vs batched (one per instance).
    pub class: ArgClass,
    /// Per-instance shape.
    pub shape: Shape,
    /// Which operator call site / argument position this slot is fed from
    /// at runtime.
    pub binding: (ExprId, usize),
}

/// A straight-line batched kernel program compiled from one fusion group.
///
/// The program is the analogue of the CUDA kernel ACROBAT generates per
/// (fused) operator: one launch executes `instrs` for every instance lane in
/// the batch, loading [`ArgClass::Shared`] inputs once.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProgram {
    /// Kernel identity (assigned by the library).
    pub id: KernelId,
    /// Diagnostic name, e.g. `"fused_matmul_add_sigmoid"`.
    pub name: String,
    /// External inputs in binding order.
    pub inputs: Vec<KernelInput>,
    /// Instructions in execution order.
    pub instrs: Vec<KInstr>,
    /// Registers whose values leave the kernel, in site order, with the
    /// producing site (for the runtime to map results back to DFG values).
    pub outputs: Vec<(ExprId, RegId, Shape)>,
    /// Floating-point work per instance (for the device cost model).
    pub flops_per_instance: u64,
    /// Bytes of external input read per instance.
    pub input_bytes_per_instance: u64,
    /// Bytes of output written per instance.
    pub output_bytes_per_instance: u64,
    /// Optimized schedule, if the auto-scheduler has run.
    pub schedule: Option<crate::Schedule>,
}

impl KernelProgram {
    /// Structural signature for deduplication: instruction sequence, input
    /// classes and shapes (ignoring binding sites and names).
    pub fn signature(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for i in &self.inputs {
            let _ = write!(s, "{}:{};", i.class, i.shape);
        }
        let _ = write!(s, "->");
        for k in &self.instrs {
            let _ = write!(s, "{}(", k.op);
            for a in &k.args {
                let _ = write!(s, "r{},", a.0);
            }
            let _ = write!(s, ")r{};", k.out.0);
        }
        for (_, r, sh) in &self.outputs {
            let _ = write!(s, "out:r{}:{};", r.0, sh);
        }
        s
    }
}

/// Compiles one fusion group of a static block into a kernel program.
///
/// `analysis` supplies operator resolutions, types and argument classes; the
/// group's sites must belong to `block`.
///
/// # Panics
///
/// Panics if the analysis tables are inconsistent with the block (internal
/// error).
pub fn compile_group(
    analysis: &AnalysisResult,
    block: &acrobat_analysis::blocks::StaticBlock,
    group: &acrobat_analysis::fusion::FusionGroup,
) -> KernelProgram {
    let module = &analysis.module;
    let mut next_reg = 0u32;
    let mut fresh = || {
        let r = RegId(next_reg);
        next_reg += 1;
        r
    };

    // Site index lookup within the block.
    let site_index = |site: ExprId| -> usize {
        block.sites.iter().position(|s| s.site == site).expect("site in block")
    };
    let in_group = |idx: usize| -> bool { group.sites.iter().any(|&s| site_index(s) == idx) };

    let mut inputs: Vec<KernelInput> = Vec::new();
    let mut instrs: Vec<KInstr> = Vec::new();
    let mut site_reg: std::collections::BTreeMap<usize, RegId> = Default::default();
    let mut names: Vec<&'static str> = Vec::new();

    for &site in &group.sites {
        let idx = site_index(site);
        let node = &block.sites[idx];
        let prim = module.op_prims[&site].clone();
        names.push(prim.name());
        let classes = &analysis.arg_classes[&site];
        let mut args = Vec::with_capacity(node.arg_exprs.len());
        for (a, arg_expr) in node.arg_exprs.iter().enumerate() {
            let reg = match node.arg_sources[a] {
                Some(p) if in_group(p) => site_reg[&p],
                _ => {
                    // External input: class from taint analysis, except
                    // cross-group intermediates which are always per-instance.
                    let class = match node.arg_sources[a] {
                        Some(_) => ArgClass::Batched,
                        None => classes.get(a).copied().unwrap_or(ArgClass::Batched),
                    };
                    let shape = match module.expr_types.get(arg_expr) {
                        Some(Type::Tensor(s)) => s.clone(),
                        _ => Shape::scalar(),
                    };
                    let reg = fresh();
                    inputs.push(KernelInput { reg, class, shape, binding: (site, a) });
                    reg
                }
            };
            args.push(reg);
        }
        let out = fresh();
        let shape = match module.expr_types.get(&site) {
            Some(Type::Tensor(s)) => s.clone(),
            _ => Shape::scalar(),
        };
        site_reg.insert(idx, out);
        instrs.push(KInstr { op: prim, args, out, shape });
    }

    // Outputs: results consumed outside the group.
    let mut outputs = Vec::new();
    for &site in &group.sites {
        let idx = site_index(site);
        let node = &block.sites[idx];
        let internal_consumers: usize = block
            .sites
            .iter()
            .enumerate()
            .filter(|(j, _)| in_group(*j))
            .map(|(_, s)| s.arg_sources.iter().flatten().filter(|&&p| p == idx).count())
            .sum();
        let escapes_group = node.escapes || node.internal_uses > internal_consumers;
        if escapes_group || internal_consumers == 0 {
            let reg = site_reg[&idx];
            let shape = instrs.iter().find(|k| k.out == reg).expect("instr exists").shape.clone();
            outputs.push((site, reg, shape));
        }
    }

    let flops: u64 = group
        .sites
        .iter()
        .map(|&site| {
            let idx = site_index(site);
            let node = &block.sites[idx];
            let shapes: Vec<Shape> = node
                .arg_exprs
                .iter()
                .map(|e| match module.expr_types.get(e) {
                    Some(Type::Tensor(s)) => s.clone(),
                    _ => Shape::scalar(),
                })
                .collect();
            let refs: Vec<&Shape> = shapes.iter().collect();
            acrobat_tensor::flops(&module.op_prims[&site], &refs)
        })
        .sum();

    let input_bytes: u64 = inputs.iter().map(|i| i.shape.byte_size() as u64).sum();
    let output_bytes: u64 = outputs.iter().map(|(_, _, s)| s.byte_size() as u64).sum();

    let mut name = names.join("_");
    if names.len() > 1 {
        name = format!("fused_{name}");
    }
    if name.len() > 64 {
        name.truncate(64);
    }

    KernelProgram {
        id: KernelId(0), // assigned by the library
        name,
        inputs,
        instrs,
        outputs,
        flops_per_instance: flops,
        input_bytes_per_instance: input_bytes,
        output_bytes_per_instance: output_bytes,
        schedule: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_analysis::{analyze, AnalysisOptions};
    use acrobat_ir::{parse_module, typeck};

    fn compile_first(src: &str, opts: AnalysisOptions) -> (AnalysisResult, Vec<KernelProgram>) {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let a = analyze(m, opts).unwrap();
        let mut programs = Vec::new();
        for block in &a.blocks.blocks {
            for group in &block.groups {
                programs.push(compile_group(&a, block, group));
            }
        }
        (a, programs)
    }

    const FUSED: &str =
        "def @main($w: Tensor[(4, 4)], $b: Tensor[(1, 4)], %x: Tensor[(1, 4)]) -> Tensor[(1, 4)] {
        sigmoid(add($b, matmul(%x, $w)))
    }";

    #[test]
    fn fused_group_compiles_to_one_program() {
        let (_, programs) = compile_first(FUSED, AnalysisOptions::default());
        assert_eq!(programs.len(), 1);
        let p = &programs[0];
        assert_eq!(p.instrs.len(), 3);
        assert_eq!(p.name, "fused_matmul_add_sigmoid");
        // Inputs: x (batched), w (shared), b (shared).
        assert_eq!(p.inputs.len(), 3);
        let shared = p.inputs.iter().filter(|i| i.class == ArgClass::Shared).count();
        assert_eq!(shared, 2);
        // Single output: the sigmoid result.
        assert_eq!(p.outputs.len(), 1);
        assert!(p.flops_per_instance >= 2 * 4 * 4, "matmul flops counted");
    }

    #[test]
    fn unfused_compiles_three_programs_with_intermediates() {
        let (_, programs) = compile_first(FUSED, AnalysisOptions::none());
        assert_eq!(programs.len(), 3);
        // The add kernel takes the matmul intermediate as a batched input.
        let add = programs.iter().find(|p| p.name == "add").unwrap();
        assert!(add.inputs.iter().any(|i| i.class == ArgClass::Batched));
        assert_eq!(add.outputs.len(), 1);
    }

    #[test]
    fn signatures_dedup_identical_structures() {
        let src = "def @main($w1: Tensor[(4, 4)], $w2: Tensor[(4, 4)], %x: Tensor[(1, 4)], %y: Tensor[(1, 4)]) -> Tensor[(1, 4)] {
            let %a = relu(matmul(%x, $w1));
            let %s = item(sum_rows(sum_rows(%a)));
            if %s > 0.0 { relu(matmul(%y, $w2)) } else { %a }
        }";
        let (_, programs) = compile_first(src, AnalysisOptions::default());
        let relu_matmuls: Vec<&KernelProgram> =
            programs.iter().filter(|p| p.name.contains("matmul_relu")).collect();
        assert_eq!(relu_matmuls.len(), 2);
        assert_eq!(relu_matmuls[0].signature(), relu_matmuls[1].signature());
    }

    #[test]
    fn multi_output_group() {
        // Horizontal group with two escaping results.
        let src = "def @main($wi: Tensor[(4, 4)], $wf: Tensor[(4, 4)], %x: Tensor[(1, 4)]) -> (Tensor[(1, 4)], Tensor[(1, 4)]) {
            (matmul(%x, $wi), matmul(%x, $wf))
        }";
        let (_, programs) = compile_first(src, AnalysisOptions::default());
        assert_eq!(programs.len(), 1, "horizontal fusion merges both matmuls");
        assert_eq!(programs[0].outputs.len(), 2);
    }
}
