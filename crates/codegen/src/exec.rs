//! Reference executor for batched kernel programs.
//!
//! One call to [`run_batched_kernel`] models one GPU kernel launch executing
//! a fused kernel program for every instance lane of a batch.  Both §5.2
//! batched-operand styles are supported:
//!
//! * [`BatchMode::ExplicitGather`] — scattered per-instance operands are
//!   first copied into contiguous staging (bytes charged to the arena's
//!   gather counters), then read densely;
//! * [`BatchMode::GatherFused`] — operands are read in place through their
//!   offsets; the launch reports the indirect accesses so the device cost
//!   model can charge them.
//!
//! Results are bit-identical between the modes (enforced by property tests).

use acrobat_analysis::ArgClass;
use acrobat_tensor::arena::{batched_shape, ExecView};
use acrobat_tensor::batch::BatchMode;
use acrobat_tensor::{execute_slices, DeviceMem, DeviceTensor, Shape, TensorError};

use crate::kernel::KernelProgram;

/// Runtime arguments for one batched kernel launch, parallel to
/// [`KernelProgram::inputs`].
#[derive(Debug, Clone)]
pub enum BatchedArg {
    /// One tensor for the whole batch (input slot is [`ArgClass::Shared`]).
    Shared(DeviceTensor),
    /// One tensor per instance (slot is [`ArgClass::Batched`]).
    Batched(Vec<DeviceTensor>),
}

/// The full argument vector of a launch.
#[derive(Debug, Clone, Default)]
pub struct BatchedArgs {
    /// Arguments in [`KernelProgram::inputs`] order.
    pub args: Vec<BatchedArg>,
}

impl BatchedArgs {
    /// Borrowed view of the arguments (the owned form is a convenience
    /// wrapper; execution happens on the borrowed form).
    pub fn as_ref(&self) -> BatchedArgsRef<'_> {
        BatchedArgsRef {
            args: self
                .args
                .iter()
                .map(|a| match a {
                    BatchedArg::Shared(t) => BatchedArgRef::Shared(t),
                    BatchedArg::Batched(ts) => BatchedArgRef::Batched(ts.iter().collect()),
                })
                .collect(),
        }
    }
}

/// Borrowed counterpart of [`BatchedArg`]: the launch reads tensor handles
/// in place (e.g. straight out of a runtime's DFG value table) instead of
/// cloning them.  Cloning a `DeviceTensor` heap-allocates its [`Shape`], so
/// on the flush hot path — every argument of every lane of every batch —
/// the borrowed form is what keeps binding allocation-free.
#[derive(Debug, Clone)]
pub enum BatchedArgRef<'a> {
    /// One tensor for the whole batch (input slot is [`ArgClass::Shared`]).
    Shared(&'a DeviceTensor),
    /// One tensor per instance (slot is [`ArgClass::Batched`]).
    Batched(Vec<&'a DeviceTensor>),
}

/// Borrowed argument vector of a launch, parallel to
/// [`KernelProgram::inputs`].
#[derive(Debug, Clone, Default)]
pub struct BatchedArgsRef<'a> {
    /// Arguments in [`KernelProgram::inputs`] order.
    pub args: Vec<BatchedArgRef<'a>>,
}

/// Cost-relevant observations of one launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelLaunchStats {
    /// Always 1 for a successful launch.
    pub launches: u64,
    /// Bytes moved by explicit gathers.
    pub gather_bytes: u64,
    /// Explicit gather copies performed.
    pub gather_copies: u64,
    /// Gathers skipped (operands contiguous).
    pub contiguous_hits: u64,
    /// Scattered operand instances read through the offset table.
    pub indirect_reads: u64,
    /// Total floating-point work (`flops_per_instance × batch`).
    pub flops: u64,
    /// Bytes of shared operands loaded (once per launch).
    pub shared_bytes: u64,
    /// Bytes of batched operands loaded (per instance).
    pub batched_bytes: u64,
    /// Bytes of output written.
    pub output_bytes: u64,
}

impl KernelLaunchStats {
    /// Accumulates another launch.
    pub fn merge(&mut self, o: &KernelLaunchStats) {
        self.launches += o.launches;
        self.gather_bytes += o.gather_bytes;
        self.gather_copies += o.gather_copies;
        self.contiguous_hits += o.contiguous_hits;
        self.indirect_reads += o.indirect_reads;
        self.flops += o.flops;
        self.shared_bytes += o.shared_bytes;
        self.batched_bytes += o.batched_bytes;
        self.output_bytes += o.output_bytes;
    }
}

/// Executes a kernel program for `batch` instance lanes.
///
/// Returns `outputs[slot][lane]` device tensors (each slot's lanes share one
/// contiguous allocation, so downstream gathers hit the contiguous fast
/// path) plus the launch statistics.
///
/// # Errors
///
/// Returns [`TensorError`] on argument-shape mismatches, arena exhaustion or
/// kernel failures.
pub fn run_batched_kernel(
    mem: &mut DeviceMem,
    program: &KernelProgram,
    args: &BatchedArgs,
    batch: usize,
    mode: BatchMode,
) -> Result<(Vec<Vec<DeviceTensor>>, KernelLaunchStats), TensorError> {
    run_batched_kernel_ref(mem, program, &args.as_ref(), batch, mode)
}

/// Borrowed-argument form of [`run_batched_kernel`].  Callers that already
/// hold tensor handles elsewhere (a DFG value table) bind them by reference
/// via [`bind_args_ref`] and avoid per-lane handle clones entirely.
///
/// Structurally this is [`prepare_batched_kernel`] + [`execute_prepared`]
/// over all lanes + [`finish_prepared`] — the same machinery the parallel
/// executor drives, so sequential and parallel execution are bit-for-bit
/// identical by construction.
///
/// # Errors
///
/// As for [`run_batched_kernel`].
pub fn run_batched_kernel_ref(
    mem: &mut DeviceMem,
    program: &KernelProgram,
    args: &BatchedArgsRef<'_>,
    batch: usize,
    mode: BatchMode,
) -> Result<(Vec<Vec<DeviceTensor>>, KernelLaunchStats), TensorError> {
    let prep = prepare_batched_kernel(mem, program, args, batch, mode)?;
    let mut scratch = ExecScratch::default();
    execute_prepared(&mem.exec_view(), program, &prep, 0..batch, &mut scratch)?;
    let outputs = finish_prepared(mem, &prep)?;
    Ok((outputs, prep.stats))
}

/// Per-lane offset pattern of a resolved input slot.
///
/// The overwhelmingly common patterns — every lane reads one address
/// (shared operands, broadcast operands) or lane `i` reads
/// `base + i · stride` (gather staging, the contiguous outputs of an
/// earlier batched launch) — are encoded closed-form, so preparing a
/// launch allocates a per-lane offset table only for genuinely scattered
/// operands.
#[derive(Debug, Clone)]
pub(crate) enum SlotOffsets {
    /// Every lane reads the same offset.
    Same(usize),
    /// Lane `i` reads `base + i * stride` (element offsets).
    Strided {
        /// Offset lane 0 reads.
        base: usize,
        /// Per-lane element stride.
        stride: usize,
    },
    /// One offset per lane.
    Scattered(Vec<usize>),
}

/// A resolved input slot of a prepared launch: absolute element offsets
/// into the arena plus the per-instance operand shape.
#[derive(Debug, Clone)]
pub(crate) struct Slot {
    pub(crate) offsets: SlotOffsets,
    pub(crate) shape: Shape,
}

impl Slot {
    /// Absolute element offset the given lane reads this slot from.
    #[inline]
    pub(crate) fn offset(&self, lane: usize) -> usize {
        match &self.offsets {
            SlotOffsets::Same(o) => *o,
            SlotOffsets::Strided { base, stride } => base + lane * stride,
            SlotOffsets::Scattered(offsets) => offsets[lane],
        }
    }
}

/// A batched kernel launch after argument resolution and output
/// reservation, ready to execute.
///
/// Prepared launches decouple the *sequential* effects of a launch (fault
/// accounting, gather staging, output allocation — everything touching
/// `&mut DeviceMem`) from the *pure* lane computation, which then runs
/// through a shared [`ExecView`] on any thread, over any partition of the
/// lane range.  `stream`/`level` carry the device-timeline placement and
/// flush-plan dependency level assigned by the runtime (0 when unused).
#[derive(Debug)]
pub struct PreparedLaunch {
    pub(crate) slots: Vec<Slot>,
    pub(crate) out_handles: Vec<DeviceTensor>,
    /// Cost-relevant observations (complete: gathers already happened
    /// during preparation).
    pub stats: KernelLaunchStats,
    /// Lane count of the launch.
    pub batch: usize,
    /// Simulated compute stream the launch was placed on.
    pub stream: u32,
    /// Dependency level of the batch within its flush plan (same-level
    /// batches are independent).
    pub level: u32,
}

/// Resolves arguments, performs explicit gathers and reserves outputs for
/// one batched launch — every effect that must happen in plan order — and
/// returns the launch ready for [`execute_prepared`].
///
/// # Errors
///
/// As for [`run_batched_kernel`]; additionally counts one launch against an
/// armed fault plan, so fault occurrence numbering follows preparation
/// order (== plan order) regardless of how execution is parallelized.
pub fn prepare_batched_kernel(
    mem: &mut DeviceMem,
    program: &KernelProgram,
    args: &BatchedArgsRef<'_>,
    batch: usize,
    mode: BatchMode,
) -> Result<PreparedLaunch, TensorError> {
    if batch == 0 {
        return Err(TensorError::EmptyBatch);
    }
    if args.args.len() != program.inputs.len() {
        return Err(TensorError::Arity {
            op: "kernel",
            got: args.args.len(),
            expected: program.inputs.len(),
        });
    }
    for (input, arg) in program.inputs.iter().zip(&args.args) {
        match (input.class, arg) {
            (ArgClass::Shared, BatchedArgRef::Shared(_)) => {}
            (ArgClass::Batched, BatchedArgRef::Batched(ts)) => {
                if ts.len() != batch {
                    return Err(TensorError::Arity {
                        op: "kernel",
                        got: ts.len(),
                        expected: batch,
                    });
                }
            }
            (want, _) => {
                return Err(TensorError::Arity {
                    op: if want == ArgClass::Shared {
                        "kernel shared slot"
                    } else {
                        "kernel batched slot"
                    },
                    got: 0,
                    expected: 1,
                });
            }
        }
    }
    prepare_batched_kernel_with(mem, program, batch, mode, |lane, slot| match &args.args[slot] {
        BatchedArgRef::Shared(t) => t,
        BatchedArgRef::Batched(ts) => ts[lane],
    })
}

/// Local classification of a batched slot's offsets during preparation.
#[derive(PartialEq, Clone, Copy)]
enum OffsetPattern {
    Same,
    Strided,
    Scattered,
}

/// Closure-binding form of [`prepare_batched_kernel`]: `resolve(lane, slot)`
/// hands back the tensor bound at that position (lane 0 for shared slots),
/// typically straight out of the caller's DFG value table.
///
/// No intermediate argument vector is materialized, and slots whose lane
/// offsets follow the common closed forms (all-same, strided) allocate no
/// per-lane table either — this is the allocation-free binding path the
/// runtime drives on every flush.  `resolve` may be called more than once
/// per position and must return the same tensor each time.
///
/// # Errors
///
/// As for [`prepare_batched_kernel`] (argument-count and class mismatches
/// excepted — the closure binds by the program's own input classes).
pub fn prepare_batched_kernel_with<'a>(
    mem: &mut DeviceMem,
    program: &KernelProgram,
    batch: usize,
    mode: BatchMode,
    mut resolve: impl FnMut(usize, usize) -> &'a DeviceTensor,
) -> Result<PreparedLaunch, TensorError> {
    if batch == 0 {
        return Err(TensorError::EmptyBatch);
    }
    // Checked-mode fault injection: a well-formed launch counts against an
    // armed fault plan before touching device state.
    mem.trip_fault(acrobat_tensor::FaultSite::Launch)?;
    let mut stats = KernelLaunchStats {
        launches: 1,
        flops: program.flops_per_instance * batch as u64,
        ..Default::default()
    };

    let shape_err = |input: &crate::kernel::KernelInput, other: &Shape| TensorError::BatchShape {
        op: "kernel",
        first: input.shape.clone(),
        other: other.clone(),
    };

    // Resolve every input slot to per-lane offsets (shared slots repeat).
    let mut slots: Vec<Slot> = Vec::with_capacity(program.inputs.len());
    for (slot_idx, input) in program.inputs.iter().enumerate() {
        match input.class {
            ArgClass::Shared => {
                let t = resolve(0, slot_idx);
                if t.shape() != &input.shape {
                    return Err(shape_err(input, t.shape()));
                }
                stats.shared_bytes += t.shape().byte_size() as u64;
                slots.push(Slot {
                    offsets: SlotOffsets::Same(t.offset()),
                    shape: input.shape.clone(),
                });
            }
            ArgClass::Batched => {
                // Pass 1: shape checks plus offset-pattern detection.  Only
                // a genuinely scattered slot pays for an offset table.
                let t0 = resolve(0, slot_idx);
                if t0.shape() != &input.shape {
                    return Err(shape_err(input, t0.shape()));
                }
                let base = t0.offset();
                let mut pattern = OffsetPattern::Same;
                let mut stride = 0usize;
                for lane in 1..batch {
                    let t = resolve(lane, slot_idx);
                    if t.shape() != &input.shape {
                        return Err(shape_err(input, t.shape()));
                    }
                    let off = t.offset();
                    pattern = match pattern {
                        OffsetPattern::Same if off == base => OffsetPattern::Same,
                        OffsetPattern::Same if lane == 1 && off > base => {
                            stride = off - base;
                            OffsetPattern::Strided
                        }
                        OffsetPattern::Strided if off == base + lane * stride => {
                            OffsetPattern::Strided
                        }
                        _ => OffsetPattern::Scattered,
                    };
                }
                stats.batched_bytes += (input.shape.byte_size() * batch) as u64;
                let offsets = match mode {
                    BatchMode::GatherFused => {
                        stats.indirect_reads += batch as u64;
                        match pattern {
                            OffsetPattern::Same => SlotOffsets::Same(base),
                            OffsetPattern::Strided => SlotOffsets::Strided { base, stride },
                            OffsetPattern::Scattered => SlotOffsets::Scattered(
                                (0..batch).map(|lane| resolve(lane, slot_idx).offset()).collect(),
                            ),
                        }
                    }
                    BatchMode::ExplicitGather => {
                        // Identical operands across all lanes (e.g. an
                        // un-deduplicated weight) need no staging: the dense
                        // kernel broadcast-reads one copy.
                        if pattern == OffsetPattern::Same {
                            stats.contiguous_hits += 1;
                            SlotOffsets::Same(base)
                        } else {
                            let ts: Vec<&DeviceTensor> =
                                (0..batch).map(|lane| resolve(lane, slot_idx)).collect();
                            let before = mem.stats();
                            let (staging, copied) = mem.gather(&ts)?;
                            if copied {
                                stats.gather_bytes +=
                                    mem.stats().gather_bytes - before.gather_bytes;
                                stats.gather_copies += 1;
                            } else {
                                stats.contiguous_hits += 1;
                            }
                            SlotOffsets::Strided {
                                base: staging.offset(),
                                stride: input.shape.numel(),
                            }
                        }
                    }
                };
                slots.push(Slot { offsets, shape: input.shape.clone() });
            }
        }
    }

    // Reserve batched outputs (contiguous per slot, back to back).  This is
    // the deterministic output placement that keeps parallel execution
    // bit-for-bit: offsets depend only on preparation order, never on which
    // worker executes which lanes.
    let mut out_handles: Vec<DeviceTensor> = Vec::with_capacity(program.outputs.len());
    for (_, _, shape) in &program.outputs {
        out_handles.push(mem.alloc(&batched_shape(shape, batch))?);
        stats.output_bytes += (shape.byte_size() * batch) as u64;
    }

    Ok(PreparedLaunch { slots, out_handles, stats, batch, stream: 0, level: 0 })
}

/// Reusable per-worker working memory for [`execute_prepared`]: instruction
/// scratch registers, kept alive across launches so steady-state execution
/// reallocates nothing once buffer capacities warm up.
#[derive(Debug, Default)]
pub struct ExecScratch {
    regs: Vec<Vec<f32>>,
    reg_shapes: Vec<Option<Shape>>,
}

/// Executes the lanes `lane_range` of a prepared launch through a shared
/// arena view.
///
/// Pure with respect to the arena apart from writes into the launch's own
/// reserved output regions at lane-deterministic offsets, so any partition
/// of the lane range across workers produces identical memory contents.
///
/// # Errors
///
/// Returns [`TensorError`] on kernel failures.
pub fn execute_prepared(
    view: &ExecView<'_>,
    program: &KernelProgram,
    prep: &PreparedLaunch,
    lane_range: std::ops::Range<usize>,
    scratch: &mut ExecScratch,
) -> Result<(), TensorError> {
    debug_assert!(lane_range.end <= prep.batch);
    // (Re)bind the scratch registers to this program.
    let max_reg = program
        .instrs
        .iter()
        .map(|k| k.out.0)
        .chain(program.inputs.iter().map(|i| i.reg.0))
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0);
    scratch.regs.resize_with(max_reg, Vec::new);
    scratch.reg_shapes.clear();
    scratch.reg_shapes.resize(max_reg, None);
    for k in &program.instrs {
        let buf = &mut scratch.regs[k.out.0 as usize];
        buf.clear();
        buf.resize(k.shape.numel(), 0.0);
        scratch.reg_shapes[k.out.0 as usize] = Some(k.shape.clone());
    }

    // One slice table for the whole range, rebound per lane (slot shapes are
    // lane-invariant, so entries are overwritten in place — no per-lane
    // allocation, no per-lane `Shape` clones).
    let mut input_views: Vec<Option<(&[f32], &Shape)>> = vec![None; max_reg];
    for lane in lane_range {
        // Bind input registers to slices for this lane.  SAFETY: inputs
        // were fully written before this launch's execution phase (they are
        // uploads, earlier flushes' outputs, earlier runs' outputs or
        // gather staging filled during preparation) and no concurrent work
        // unit writes them — same-level batches never consume each other.
        for (slot, input) in prep.slots.iter().zip(&program.inputs) {
            let slice = unsafe { view.read(slot.offset(lane), slot.shape.numel()) };
            input_views[input.reg.0 as usize] = Some((slice, &slot.shape));
        }
        // Execute instructions into scratch.  Registers are SSA-style (the
        // destination is always fresh), so taking the output buffer out of
        // the register file before borrowing the argument registers is safe.
        for k in &program.instrs {
            let mut out_buf = std::mem::take(&mut scratch.regs[k.out.0 as usize]);
            {
                let mut ins: Vec<(&[f32], &Shape)> = Vec::with_capacity(k.args.len());
                for a in &k.args {
                    let i = a.0 as usize;
                    if let Some((slice, shape)) = input_views[i] {
                        ins.push((slice, shape));
                    } else {
                        let shape = scratch.reg_shapes[i].as_ref().expect("register defined");
                        ins.push((&scratch.regs[i], shape));
                    }
                }
                execute_slices(&k.op, &ins, &mut out_buf)?;
            }
            scratch.regs[k.out.0 as usize] = out_buf;
        }
        // Copy escaping registers into the reserved output regions.
        // SAFETY: each output region was freshly bump-allocated for this
        // launch and this `lane` sub-range is written by exactly one work
        // unit — concurrent writes are disjoint by construction.
        for ((_, reg, shape), handle) in program.outputs.iter().zip(&prep.out_handles) {
            let n = shape.numel();
            let dst = unsafe { view.write(handle.offset() + lane * n, n) };
            dst.copy_from_slice(&scratch.regs[reg.0 as usize]);
        }
    }
    Ok(())
}

/// Builds the per-lane output views of an executed prepared launch.
///
/// # Errors
///
/// Returns [`TensorError::StaleHandle`] if the arena was reset since
/// preparation (cannot happen in the flush path).
pub fn finish_prepared(
    mem: &DeviceMem,
    prep: &PreparedLaunch,
) -> Result<Vec<Vec<DeviceTensor>>, TensorError> {
    let mut outputs: Vec<Vec<DeviceTensor>> = Vec::with_capacity(prep.out_handles.len());
    for handle in &prep.out_handles {
        outputs.push(mem.scatter_views(handle, prep.batch)?);
    }
    Ok(outputs)
}

/// Convenience: executes a program for a single instance (`batch == 1`),
/// returning one tensor per output slot.
///
/// # Errors
///
/// As for [`run_batched_kernel`].
pub fn run_single(
    mem: &mut DeviceMem,
    program: &KernelProgram,
    args: &BatchedArgs,
) -> Result<(Vec<DeviceTensor>, KernelLaunchStats), TensorError> {
    let (outs, stats) = run_batched_kernel(mem, program, args, 1, BatchMode::GatherFused)?;
    Ok((outs.into_iter().map(|mut v| v.remove(0)).collect(), stats))
}

/// Helper used by runtimes: wraps concrete tensors into [`BatchedArgs`]
/// according to the program's input classes, where `per_site[lane][slot]`
/// holds each lane's argument tensors.
///
/// For shared slots the lane-0 tensor is used (all lanes hold the same
/// tensor by construction — the taint analysis guarantees it).
pub fn bind_args(program: &KernelProgram, per_lane: &[Vec<DeviceTensor>]) -> BatchedArgs {
    let mut args = Vec::with_capacity(program.inputs.len());
    for (slot, input) in program.inputs.iter().enumerate() {
        match input.class {
            ArgClass::Shared => args.push(BatchedArg::Shared(per_lane[0][slot].clone())),
            ArgClass::Batched => args.push(BatchedArg::Batched(
                per_lane.iter().map(|lane| lane[slot].clone()).collect(),
            )),
        }
    }
    BatchedArgs { args }
}

/// Borrow-binding counterpart of [`bind_args`]: `resolve(lane, slot)` hands
/// back a reference to the tensor bound at that position, typically straight
/// out of the caller's value table, so no handles are cloned.
///
/// For shared slots only lane 0 is resolved (all lanes hold the same tensor
/// by construction — the taint analysis guarantees it).
pub fn bind_args_ref<'a>(
    program: &KernelProgram,
    lanes: usize,
    mut resolve: impl FnMut(usize, usize) -> &'a DeviceTensor,
) -> BatchedArgsRef<'a> {
    let mut args = Vec::with_capacity(program.inputs.len());
    for (slot, input) in program.inputs.iter().enumerate() {
        match input.class {
            ArgClass::Shared => args.push(BatchedArgRef::Shared(resolve(0, slot))),
            ArgClass::Batched => args
                .push(BatchedArgRef::Batched((0..lanes).map(|lane| resolve(lane, slot)).collect())),
        }
    }
    BatchedArgsRef { args }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_analysis::{analyze, AnalysisOptions};
    use acrobat_ir::{parse_module, typeck};
    use acrobat_tensor::Tensor;

    fn compile(src: &str) -> (acrobat_analysis::AnalysisResult, crate::KernelLibrary) {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let a = analyze(m, AnalysisOptions::default()).unwrap();
        let lib = crate::KernelLibrary::build(&a);
        (a, lib)
    }

    #[test]
    fn fused_kernel_matches_reference() {
        let (_, lib) = compile(
            "def @main($w: Tensor[(3, 3)], $b: Tensor[(1, 3)], %x: Tensor[(1, 3)]) -> Tensor[(1, 3)] {
                sigmoid(add($b, matmul(%x, $w)))
            }",
        );
        assert_eq!(lib.len(), 1);
        let program = lib.kernel(crate::KernelId(0));

        let mut mem = DeviceMem::new(1 << 16);
        let w = Tensor::from_fn(&[3, 3], |i| (i as f32 * 0.3).sin());
        let b = Tensor::from_fn(&[1, 3], |i| i as f32 * 0.1);
        let dw = mem.upload(&w).unwrap();
        let db = mem.upload(&b).unwrap();

        let batch = 4;
        let mut lanes = Vec::new();
        let mut hosts = Vec::new();
        for l in 0..batch {
            let x = Tensor::from_fn(&[1, 3], |i| (i + l) as f32 * 0.2 - 0.5);
            let dx = mem.upload(&x).unwrap();
            mem.alloc(&acrobat_tensor::Shape::new(&[l + 1])).unwrap(); // scatter
            hosts.push(x);
            // Slot order follows program.inputs; find which binding is which
            // by class: x is the only batched input.
            let mut lane = Vec::new();
            for input in &program.inputs {
                match input.class {
                    ArgClass::Batched => lane.push(dx.clone()),
                    ArgClass::Shared => {
                        // shared inputs: bias and weight — identify by shape.
                        if input.shape.dims() == [3, 3] {
                            lane.push(dw.clone());
                        } else {
                            lane.push(db.clone());
                        }
                    }
                }
            }
            lanes.push(lane);
        }
        let args = bind_args(program, &lanes);
        let (outs, stats) =
            run_batched_kernel(&mut mem, program, &args, batch, BatchMode::GatherFused).unwrap();
        assert_eq!(stats.launches, 1);
        assert_eq!(outs.len(), 1);

        for (l, host_x) in hosts.iter().enumerate() {
            let mm =
                acrobat_tensor::execute(&acrobat_tensor::PrimOp::MatMul, &[host_x, &w]).unwrap();
            let ad = acrobat_tensor::execute(&acrobat_tensor::PrimOp::Add, &[&b, &mm]).unwrap();
            let sg = acrobat_tensor::execute(&acrobat_tensor::PrimOp::Sigmoid, &[&ad]).unwrap();
            let got = mem.download(&outs[0][l]).unwrap();
            assert!(got.allclose(&sg, 1e-6), "lane {l}: {got:?} vs {sg:?}");
        }
    }

    #[test]
    fn gather_and_fused_modes_agree() {
        let (_, lib) = compile(
            "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                relu(matmul(%x, $w))
            }",
        );
        let program = lib.kernel(crate::KernelId(0));
        let mut mem = DeviceMem::new(1 << 16);
        let w = mem.upload(&Tensor::from_fn(&[2, 2], |i| i as f32 + 1.0)).unwrap();
        let batch = 3;
        let mut lanes = Vec::new();
        for l in 0..batch {
            let x = mem.upload(&Tensor::fill(&[1, 2], l as f32 - 1.0)).unwrap();
            mem.alloc(&acrobat_tensor::Shape::new(&[2])).unwrap();
            let lane: Vec<DeviceTensor> = program
                .inputs
                .iter()
                .map(|i| if i.class == ArgClass::Batched { x.clone() } else { w.clone() })
                .collect();
            lanes.push(lane);
        }
        let args = bind_args(program, &lanes);
        let (f, fs) =
            run_batched_kernel(&mut mem, program, &args, batch, BatchMode::GatherFused).unwrap();
        let (g, gs) =
            run_batched_kernel(&mut mem, program, &args, batch, BatchMode::ExplicitGather).unwrap();
        for (a, b) in f[0].iter().zip(&g[0]) {
            assert_eq!(mem.read(a).unwrap(), mem.read(b).unwrap());
        }
        assert_eq!(fs.gather_bytes, 0);
        assert!(fs.indirect_reads > 0);
        assert!(gs.gather_bytes > 0);
    }

    #[test]
    fn ref_binding_matches_owned_binding() {
        let (_, lib) = compile(
            "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                relu(matmul(%x, $w))
            }",
        );
        let program = lib.kernel(crate::KernelId(0));
        let mut mem = DeviceMem::new(1 << 16);
        let w = mem.upload(&Tensor::from_fn(&[2, 2], |i| i as f32 - 1.0)).unwrap();
        let batch = 3;
        let mut lanes: Vec<Vec<DeviceTensor>> = Vec::new();
        for l in 0..batch {
            let x = mem.upload(&Tensor::fill(&[1, 2], l as f32)).unwrap();
            mem.alloc(&acrobat_tensor::Shape::new(&[1 + l])).unwrap(); // scatter
            let lane: Vec<DeviceTensor> = program
                .inputs
                .iter()
                .map(|i| if i.class == ArgClass::Batched { x.clone() } else { w.clone() })
                .collect();
            lanes.push(lane);
        }
        let owned = bind_args(program, &lanes);
        let (a, _) =
            run_batched_kernel(&mut mem, program, &owned, batch, BatchMode::GatherFused).unwrap();
        let refs = bind_args_ref(program, batch, |lane, slot| &lanes[lane][slot]);
        let (b, _) =
            run_batched_kernel_ref(&mut mem, program, &refs, batch, BatchMode::GatherFused)
                .unwrap();
        for (x, y) in a[0].iter().zip(&b[0]) {
            assert_eq!(mem.read(x).unwrap(), mem.read(y).unwrap());
        }
    }

    #[test]
    fn partitioned_execution_is_bit_identical() {
        let (_, lib) = compile(
            "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                sigmoid(matmul(%x, $w))
            }",
        );
        let program = lib.kernel(crate::KernelId(0));
        let run = |splits: &[std::ops::Range<usize>]| -> Vec<u32> {
            let mut mem = DeviceMem::new(1 << 16);
            let w = mem.upload(&Tensor::from_fn(&[2, 2], |i| (i as f32 * 0.7).cos())).unwrap();
            let batch = 5;
            let mut lanes: Vec<Vec<DeviceTensor>> = Vec::new();
            for l in 0..batch {
                let x = mem.upload(&Tensor::fill(&[1, 2], l as f32 * 0.3 - 0.6)).unwrap();
                let lane: Vec<DeviceTensor> = program
                    .inputs
                    .iter()
                    .map(|i| if i.class == ArgClass::Batched { x.clone() } else { w.clone() })
                    .collect();
                lanes.push(lane);
            }
            let refs = bind_args_ref(program, batch, |lane, slot| &lanes[lane][slot]);
            let prep =
                prepare_batched_kernel(&mut mem, program, &refs, batch, BatchMode::GatherFused)
                    .unwrap();
            let view = mem.exec_view();
            if splits.len() > 1 {
                // Execute the partitions on real threads, one scratch each.
                std::thread::scope(|s| {
                    for r in splits {
                        let r = r.clone();
                        let prep = &prep;
                        s.spawn(move || {
                            let mut scratch = ExecScratch::default();
                            execute_prepared(&view, program, prep, r, &mut scratch).unwrap();
                        });
                    }
                });
            } else {
                let mut scratch = ExecScratch::default();
                for r in splits {
                    execute_prepared(&view, program, &prep, r.clone(), &mut scratch).unwrap();
                }
            }
            let outs = finish_prepared(&mem, &prep).unwrap();
            outs[0].iter().flat_map(|t| mem.read(t).unwrap().iter().map(|f| f.to_bits())).collect()
        };
        let sequential = run(std::slice::from_ref(&(0..5)));
        assert_eq!(run(&[0..2, 2..5]), sequential, "2-way partition");
        assert_eq!(run(&[0..1, 1..2, 2..3, 3..4, 4..5]), sequential, "per-lane partition");
    }

    #[test]
    fn batch_errors() {
        let (_, lib) = compile("def @main(%x: Tensor[(1, 2)]) -> Tensor[(1, 2)] { relu(%x) }");
        let program = lib.kernel(crate::KernelId(0));
        let mut mem = DeviceMem::new(1 << 12);
        let args = BatchedArgs { args: vec![] };
        assert!(run_batched_kernel(&mut mem, program, &args, 1, BatchMode::GatherFused).is_err());
        let x = mem.upload(&Tensor::zeros(&[1, 2])).unwrap();
        let args = BatchedArgs { args: vec![BatchedArg::Batched(vec![x])] };
        assert!(matches!(
            run_batched_kernel(&mut mem, program, &args, 0, BatchMode::GatherFused),
            Err(TensorError::EmptyBatch)
        ));
        // Wrong per-lane count.
        assert!(run_batched_kernel(&mut mem, program, &args, 2, BatchMode::GatherFused).is_err());
    }

    #[test]
    fn multi_output_kernel_executes() {
        let (_, lib) = compile(
            "def @main($wi: Tensor[(2, 2)], $wf: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> (Tensor[(1, 2)], Tensor[(1, 2)]) {
                (matmul(%x, $wi), matmul(%x, $wf))
            }",
        );
        assert_eq!(lib.len(), 1);
        let program = lib.kernel(crate::KernelId(0));
        assert_eq!(program.outputs.len(), 2);
        let mut mem = DeviceMem::new(1 << 14);
        let wi = mem.upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
        let wf = mem.upload(&Tensor::from_fn(&[2, 2], |i| (i * i) as f32)).unwrap();
        let x = mem.upload(&Tensor::fill(&[1, 2], 1.0)).unwrap();
        // Identify shared slots by binding order: both shared weights have the
        // same shape, so use input order (wi first by construction).
        let mut lane = Vec::new();
        let mut shared_seen = 0;
        for input in &program.inputs {
            match input.class {
                ArgClass::Batched => lane.push(x.clone()),
                ArgClass::Shared => {
                    lane.push(if shared_seen == 0 { wi.clone() } else { wf.clone() });
                    shared_seen += 1;
                }
            }
        }
        let args = bind_args(program, &[lane]);
        let (outs, _) =
            run_batched_kernel(&mut mem, program, &args, 1, BatchMode::GatherFused).unwrap();
        assert_eq!(outs.len(), 2);
        // x·wi = [1 1]·[[0 1][2 3]] = [2 4]; x·wf = [1 1]·[[0 1][4 9]] = [4 10]
        assert_eq!(mem.read(&outs[0][0]).unwrap(), &[2.0, 4.0]);
        assert_eq!(mem.read(&outs[1][0]).unwrap(), &[4.0, 10.0]);
    }
}
