//! The kernel library: all generated kernels of a compiled program.

use std::collections::BTreeMap;

use acrobat_analysis::fusion::GroupId;
use acrobat_analysis::AnalysisResult;

use crate::kernel::{compile_group, KernelId, KernelProgram};

/// All batched kernels generated for one program, with structural
/// deduplication: fusion groups that compile to identical programs (e.g.
/// the two copies of a duplicated function, or two structurally identical
/// matmul sites) share one kernel.
///
/// Because a kernel may serve several groups, the *bindings* — which
/// operator call site / argument position feeds each input slot, and which
/// site each output belongs to — are stored per group, not on the shared
/// kernel program.
#[derive(Debug, Clone, Default)]
pub struct KernelLibrary {
    kernels: Vec<KernelProgram>,
    group_kernel: BTreeMap<GroupId, KernelId>,
    group_bindings: BTreeMap<GroupId, Vec<(acrobat_ir::ExprId, usize)>>,
    group_outputs: BTreeMap<GroupId, Vec<acrobat_ir::ExprId>>,
}

impl KernelLibrary {
    /// Generates the library for an analyzed module.
    pub fn build(analysis: &AnalysisResult) -> KernelLibrary {
        let mut lib = KernelLibrary::default();
        let mut by_sig: BTreeMap<String, KernelId> = BTreeMap::new();
        for block in &analysis.blocks.blocks {
            for group in &block.groups {
                let mut program = compile_group(analysis, block, group);
                lib.group_bindings
                    .insert(group.id, program.inputs.iter().map(|i| i.binding).collect());
                lib.group_outputs
                    .insert(group.id, program.outputs.iter().map(|(s, _, _)| *s).collect());
                let sig = program.signature();
                let id = match by_sig.get(&sig) {
                    Some(&id) => id,
                    None => {
                        let id = KernelId(lib.kernels.len() as u32);
                        program.id = id;
                        by_sig.insert(sig, id);
                        lib.kernels.push(program);
                        id
                    }
                };
                lib.group_kernel.insert(group.id, id);
            }
        }
        lib
    }

    /// Input-slot bindings of a group: `(site, arg index)` per kernel input
    /// slot, in slot order.
    ///
    /// # Panics
    ///
    /// Panics if `group` is not from the same analysis.
    pub fn bindings_for_group(&self, group: GroupId) -> &[(acrobat_ir::ExprId, usize)] {
        &self.group_bindings[&group]
    }

    /// Output sites of a group, in output-slot order.
    ///
    /// # Panics
    ///
    /// Panics if `group` is not from the same analysis.
    pub fn outputs_for_group(&self, group: GroupId) -> &[acrobat_ir::ExprId] {
        &self.group_outputs[&group]
    }

    /// The kernel compiled for a fusion group.
    ///
    /// # Panics
    ///
    /// Panics if `group` is not from the same analysis.
    pub fn kernel_for_group(&self, group: GroupId) -> &KernelProgram {
        &self.kernels[self.group_kernel[&group].0 as usize]
    }

    /// The kernel for a raw id.
    pub fn kernel(&self, id: KernelId) -> &KernelProgram {
        &self.kernels[id.0 as usize]
    }

    /// Mutable access for the auto-scheduler.
    pub fn kernel_mut(&mut self, id: KernelId) -> &mut KernelProgram {
        &mut self.kernels[id.0 as usize]
    }

    /// Kernel id for a fusion group.
    pub fn kernel_id_for_group(&self, group: GroupId) -> KernelId {
        self.group_kernel[&group]
    }

    /// Iterates over all distinct kernels.
    pub fn iter(&self) -> impl Iterator<Item = &KernelProgram> {
        self.kernels.iter()
    }

    /// Number of distinct kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_analysis::{analyze, AnalysisOptions};
    use acrobat_ir::{parse_module, typeck};

    fn build(src: &str) -> (AnalysisResult, KernelLibrary) {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let a = analyze(m, AnalysisOptions::default()).unwrap();
        let lib = KernelLibrary::build(&a);
        (a, lib)
    }

    #[test]
    fn duplicated_functions_share_kernels() {
        // BiRNN-style duplication: @step__c0 and @step__c1 have structurally
        // identical bodies → one kernel.
        let src = r#"
            def @step(%x: Tensor[(1, 4)], $w: Tensor[(4, 4)]) -> Tensor[(1, 4)] {
                tanh(matmul(%x, $w))
            }
            def @main($wf: Tensor[(4, 4)], $wb: Tensor[(4, 4)], %x: Tensor[(1, 4)]) -> Tensor[(1, 4)] {
                add(@step(%x, $wf), @step(%x, $wb))
            }
        "#;
        let (a, lib) = build(src);
        let groups: usize = a.blocks.blocks.iter().map(|b| b.groups.len()).sum();
        assert!(groups > lib.len(), "{groups} groups share {} kernels", lib.len());
        // Every group resolves to a kernel.
        for block in &a.blocks.blocks {
            for g in &block.groups {
                let k = lib.kernel_for_group(g.id);
                assert!(!k.instrs.is_empty());
            }
        }
    }

    #[test]
    fn distinct_shapes_get_distinct_kernels() {
        let src = r#"
            def @main($w1: Tensor[(4, 4)], $w2: Tensor[(4, 8)], %x: Tensor[(1, 4)]) -> Tensor[(1, 8)] {
                matmul(relu(matmul(%x, $w1)), $w2)
            }
        "#;
        let (_, lib) = build(src);
        assert_eq!(lib.len(), 2);
    }
}
