//! Kernel execution backends.
//!
//! Batched kernel launches always go through two phases: *preparation*
//! ([`crate::exec::prepare_batched_kernel_with`] — sequential, performs the
//! gather/allocation effects) and *execution* (pure per-lane compute).  This
//! module abstracts the execution phase behind the [`KernelBackend`] trait:
//!
//! * [`InterpBackend`] — the reference per-instruction interpreter
//!   ([`crate::exec::execute_prepared`]), always available, default.
//! * [`SpecializedBackend`] — PGO-gated compilation of hot
//!   `(kernel, batch-size-class)` pairs into monomorphized allocation-free
//!   closures ([`crate::spec::CompiledKernel`]).  Per-kernel launch counters
//!   are pre-seeded from hotness estimates (static frequency analysis, or
//!   the aggregated PGO profile after retuning), so kernels that the
//!   profile says are hot compile on their first post-retune launch while
//!   cold kernels never pay compilation.
//!
//! Every backend must produce bit-for-bit the same arena contents as the
//! interpreter; checked mode enforces this at runtime by re-executing each
//! compiled launch through the interpreter and comparing output bits.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use acrobat_tensor::arena::ExecView;
use acrobat_tensor::TensorError;
use serde::{Deserialize, Serialize};

use crate::exec::{execute_prepared, ExecScratch, PreparedLaunch};
use crate::kernel::{KernelId, KernelProgram};
use crate::spec::CompiledKernel;

/// Which kernel-execution backend the runtime drives.
///
/// The default is the reference interpreter, so all modeled statistics and
/// published experiment artifacts are reproduced unchanged unless a run
/// explicitly opts into specialized execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelBackendKind {
    /// The reference per-instruction interpreter.
    #[default]
    Interp,
    /// PGO-gated specialized execution with an interpreter fallback for
    /// cold kernels.
    Spec,
}

/// Number of batch-size classes a kernel can be specialized for.
pub const NUM_SIZE_CLASSES: usize = 8;

/// Floor-log2 bucket of the lane count, capped at
/// [`NUM_SIZE_CLASSES`]` - 1`: 1 → 0, 2–3 → 1, 4–7 → 2, …, ≥128 → 7.
///
/// Class only selects loop tiling in the compiled kernel; it never changes
/// results.
pub fn size_class(lanes: usize) -> usize {
    let lanes = lanes.max(1);
    ((usize::BITS - 1 - lanes.leading_zeros()) as usize).min(NUM_SIZE_CLASSES - 1)
}

/// Execution-phase strategy for batched kernel launches.
///
/// Implementations are engine-resident: shared immutably (`Send + Sync`)
/// across every pooled execution context, with interior mutability for
/// launch counters and compiled-kernel caches.  The contract is strict
/// bit-for-bit agreement with the reference interpreter on the arena
/// contents of every launch.
pub trait KernelBackend: std::fmt::Debug + Send + Sync {
    /// Short stable name for logs and bench output.
    fn name(&self) -> &'static str;

    /// Decides how the execution phase of one launch of `program` over
    /// `lanes` lanes should run, updating hotness counters as a side
    /// effect.
    fn select(&self, program: &KernelProgram, lanes: usize) -> Selection;

    /// Number of `(kernel, size-class)` pairs compiled so far.
    fn compiled_count(&self) -> usize {
        0
    }
}

/// The reference backend: every launch executes through the
/// per-instruction interpreter.
#[derive(Debug, Default, Clone, Copy)]
pub struct InterpBackend;

impl KernelBackend for InterpBackend {
    fn name(&self) -> &'static str {
        "interp"
    }

    fn select(&self, _program: &KernelProgram, _lanes: usize) -> Selection {
        Selection::Interp
    }
}

/// Outcome of [`KernelBackend::select`] for one launch.
#[derive(Debug, Clone)]
pub enum Selection {
    /// Execute through the reference interpreter.
    Interp,
    /// Execute through a compiled kernel.
    Compiled {
        /// The monomorphized kernel for this `(kernel, size-class)` pair.
        kernel: Arc<CompiledKernel>,
        /// Whether this launch triggered the compilation (for stats).
        fresh: bool,
    },
}

impl Selection {
    /// Whether this selection runs the compiled path.
    pub fn is_compiled(&self) -> bool {
        matches!(self, Selection::Compiled { .. })
    }

    /// Whether this selection compiled its kernel on this launch.
    pub fn is_fresh_compile(&self) -> bool {
        matches!(self, Selection::Compiled { fresh: true, .. })
    }

    /// Runs the execution phase for `lane_range` of a prepared launch.
    ///
    /// With `checked` set and a compiled selection, the launch is
    /// re-executed through the reference interpreter and the output
    /// regions are compared bit for bit; any divergence panics with the
    /// kernel name (backend bugs are not recoverable data faults).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] on kernel failures.
    pub fn execute(
        &self,
        view: &ExecView<'_>,
        program: &KernelProgram,
        prep: &PreparedLaunch,
        lane_range: Range<usize>,
        scratch: &mut BackendScratch,
        checked: bool,
    ) -> Result<(), TensorError> {
        match self {
            Selection::Interp => {
                execute_prepared(view, program, prep, lane_range, &mut scratch.interp)
            }
            Selection::Compiled { kernel, .. } => {
                kernel.execute(
                    view,
                    prep,
                    lane_range.clone(),
                    &mut scratch.flat,
                    &mut scratch.tiles,
                    &mut scratch.inputs,
                )?;
                if checked {
                    verify_against_interp(view, program, prep, lane_range, scratch)?;
                }
                Ok(())
            }
        }
    }
}

/// Snapshots the compiled outputs for `lane_range`, re-executes through the
/// interpreter (overwriting the same regions, so memory afterwards holds
/// the reference bits either way) and panics on any bit mismatch.
fn verify_against_interp(
    view: &ExecView<'_>,
    program: &KernelProgram,
    prep: &PreparedLaunch,
    lane_range: Range<usize>,
    scratch: &mut BackendScratch,
) -> Result<(), TensorError> {
    let lanes = lane_range.len();
    scratch.check.clear();
    // SAFETY: the compiled path just wrote these exact regions from this
    // work unit; reading back our own writes is race-free.
    for ((_, _, shape), handle) in program.outputs.iter().zip(&prep.out_handles) {
        let n = shape.numel();
        let region = unsafe { view.read(handle.offset() + lane_range.start * n, lanes * n) };
        scratch.check.extend_from_slice(region);
    }
    execute_prepared(view, program, prep, lane_range.clone(), &mut scratch.interp)?;
    let mut at = 0;
    for (out_idx, ((_, _, shape), handle)) in
        program.outputs.iter().zip(&prep.out_handles).enumerate()
    {
        let n = shape.numel();
        // SAFETY: as above — this work unit's own freshly written region.
        let region = unsafe { view.read(handle.offset() + lane_range.start * n, lanes * n) };
        for (i, (&reference, &compiled)) in
            region.iter().zip(&scratch.check[at..at + lanes * n]).enumerate()
        {
            assert!(
                reference.to_bits() == compiled.to_bits(),
                "specialized backend diverged from reference interpreter on kernel `{}` \
                 output {} element {} (lanes {:?}): compiled {:?} != reference {:?}",
                program.name,
                out_idx,
                i,
                lane_range,
                compiled,
                reference,
            );
        }
        at += lanes * n;
    }
    Ok(())
}

/// Reusable per-worker working memory for the execution phase.
///
/// One instance per execution context (and per parallel worker) kills the
/// per-launch allocations the interpreter used to make: interpreter
/// register buffers, the compiled path's flat scratch and tiles, and the
/// checked-mode snapshot all persist across launches.
#[derive(Debug, Default)]
pub struct BackendScratch {
    /// Interpreter register scratch.
    pub interp: ExecScratch,
    flat: Vec<f32>,
    tiles: Vec<f32>,
    inputs: Vec<f32>,
    check: Vec<f32>,
}

/// PGO-gated specialized backend.
///
/// Per-kernel launch counters decide when a kernel is hot enough to
/// compile; counters are pre-seeded with hotness estimates so that a good
/// profile (static frequency analysis at engine build, the aggregated PGO
/// profile after retuning) makes hot kernels compile on their first launch.
/// Compiled kernels are cached per `(kernel, batch-size-class)` in
/// lock-free [`OnceLock`] cells shared by all pooled contexts; retuning
/// builds a fresh backend, which is exactly the invalidation the plan
/// cache already follows.
#[derive(Debug)]
pub struct SpecializedBackend {
    threshold: u64,
    counters: Vec<AtomicU64>,
    cache: Vec<[OnceLock<Arc<CompiledKernel>>; NUM_SIZE_CLASSES]>,
}

impl SpecializedBackend {
    /// Creates a backend for a library of `kernels` kernels that compiles a
    /// kernel once its launch count reaches `threshold` (minimum 1).
    pub fn new(kernels: usize, threshold: u64) -> SpecializedBackend {
        SpecializedBackend {
            threshold: threshold.max(1),
            counters: (0..kernels).map(|_| AtomicU64::new(0)).collect(),
            cache: (0..kernels).map(|_| std::array::from_fn(|_| OnceLock::new())).collect(),
        }
    }

    /// Pre-seeds the launch counter of `kernel` with an estimated hotness
    /// weight, as if it had already launched `weight` times.
    pub fn seed(&mut self, kernel: KernelId, weight: u64) {
        if let Some(counter) = self.counters.get_mut(kernel.0 as usize) {
            let c = counter.get_mut();
            *c = (*c).max(weight.min(self.threshold));
        }
    }

    /// The compile-gating launch-count threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

impl KernelBackend for SpecializedBackend {
    fn name(&self) -> &'static str {
        "spec"
    }

    fn select(&self, program: &KernelProgram, lanes: usize) -> Selection {
        let id = program.id.0 as usize;
        let Some(counter) = self.counters.get(id) else {
            // Defensive: a program outside the library this backend was
            // sized for always interprets.
            return Selection::Interp;
        };
        let count = counter.fetch_add(1, Ordering::Relaxed) + 1;
        if count < self.threshold {
            return Selection::Interp;
        }
        let class = size_class(lanes);
        let mut fresh = false;
        let kernel = self.cache[id][class].get_or_init(|| {
            fresh = true;
            Arc::new(CompiledKernel::compile(program, class))
        });
        Selection::Compiled { kernel: Arc::clone(kernel), fresh }
    }

    fn compiled_count(&self) -> usize {
        self.cache.iter().flat_map(|classes| classes.iter()).filter(|c| c.get().is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_bucket_by_log2() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(3), 1);
        assert_eq!(size_class(4), 2);
        assert_eq!(size_class(7), 2);
        assert_eq!(size_class(8), 3);
        assert_eq!(size_class(64), 6);
        assert_eq!(size_class(128), 7);
        assert_eq!(size_class(100_000), 7);
    }
}
