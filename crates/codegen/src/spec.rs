//! Specialized kernel compilation: monomorphized, allocation-free execution
//! of hot kernel programs.
//!
//! [`CompiledKernel::compile`] lowers a [`KernelProgram`] once — per
//! batch-size class — into a form the executor can run without touching
//! the allocator:
//!
//! * **Register allocation.**  Every materialized virtual register gets a
//!   fixed offset in one flat per-launch scratch buffer; no intermediate
//!   `DeviceTensor` or per-instruction `Vec` is allocated at execution time.
//!   Storage is *batch-flat*: register `r` owns a contiguous
//!   `lanes × numel` region (lane-major), so elementwise work runs over the
//!   whole launch in one pass and escaping registers leave as one
//!   `memcpy` per output (the reserved output regions are lane-major too).
//! * **Elementwise fusion.**  Straight-line chains of strict same-shape
//!   elementwise instructions collapse into a single pass of `tile_w`-element
//!   chunks over all `lanes × numel` elements at once: interior temporaries
//!   live in small tile buffers and never touch the flat scratch, and each
//!   step is a `chunks_exact` loop over the tile
//!   ([`acrobat_tensor::map_unary`] / [`acrobat_tensor::map_binary`]) the
//!   optimizer can vectorize.  Input slots consumed by fused segments are
//!   materialized lane-major once per launch (shared operands broadcast),
//!   so every fused operand is one contiguous slice.
//! * **MatMul monomorphization and lane-stacking.**  Matrix dimensions are
//!   resolved at compile time and the multiply runs through
//!   [`acrobat_tensor::matmul_raw`] — the exact i-k-j loop of the reference
//!   executor.  When the right operand is a [`ArgClass::Shared`] input (the
//!   ubiquitous `activation × weight` orientation), the lane-major layout
//!   makes all lanes' left matrices one `(lanes·m) × k` stack, so the whole
//!   batch runs as a *single* `matmul_raw` call: each output row depends
//!   only on its own left row and the shared right operand, accumulated in
//!   the same `k` order, so stacking is numerically invisible.  Otherwise
//!   the multiply runs per lane, reading batched operands straight from the
//!   arena.
//!
//! Bit-for-bit identity with the reference interpreter is structural, not
//! accidental: fused steps apply the same scalar functions
//! ([`acrobat_tensor::UnaryKind::apply`] / [`acrobat_tensor::BinaryKind::apply`])
//! in the same per-element order (fusion is only attempted when every
//! operand has exactly the output shape, so the index maps are the
//! identity), matmul shares the reference loop verbatim, and every other
//! instruction is routed through [`acrobat_tensor::execute_slices`] — the
//! same implementation the interpreter calls.

use std::ops::Range;

use acrobat_analysis::ArgClass;
use acrobat_tensor::arena::ExecView;
use acrobat_tensor::{
    execute_slices, map_binary, map_unary, matmul_raw, matmul_raw_blocked, BinaryKind, PrimOp,
    Shape, TensorError, UnaryKind,
};

use crate::exec::{PreparedLaunch, SlotOffsets};
use crate::kernel::{KInstr, KernelProgram};

/// Where an operand of a compiled step comes from.
#[derive(Debug, Clone, Copy)]
enum Src {
    /// External input slot, read from the arena (or, inside fused
    /// segments, from its lane-major materialization).
    Input(usize),
    /// A materialized register at this per-lane offset in the flat
    /// scratch (scaled by the lane count at execution time).
    Flat(usize),
    /// The tile buffer of an earlier step in the same fused segment.
    Tile(usize),
}

/// One step of a fused elementwise segment.
#[derive(Debug, Clone, Copy)]
enum FusedOp {
    Unary(UnaryKind, Src),
    Binary(BinaryKind, Src, Src),
}

#[derive(Debug, Clone, Copy)]
struct FusedStep {
    op: FusedOp,
    /// Flat offset to materialize this step's value at, if the register is
    /// consumed outside the segment or escapes the kernel.
    sink: Option<usize>,
}

/// A compiled execution unit: one or more source instructions.
#[derive(Debug)]
enum Segment {
    /// Straight-line same-shape elementwise chain executed as one chunked
    /// pass; interior temporaries stay in tile buffers.
    Fused { steps: Vec<FusedStep>, numel: usize },
    /// Matrix multiply with dimensions resolved at compile time.  When
    /// `stacked`, the right operand is a lane-shared input and all lanes
    /// execute as one `(lanes·m) × k × n` multiply over the lane-major
    /// left stack.
    MatMul { a: Src, b: Src, out: usize, m: usize, k: usize, n: usize, stacked: bool },
    /// An instruction whose operands are all lane-invariant (shared inputs,
    /// or none at all — constant fills): executed *once* per launch through
    /// the reference implementation and broadcast, since every lane
    /// computes identical bits from identical inputs.
    Const { op: PrimOp, args: Vec<(usize, Shape)>, out: usize, out_len: usize },
    /// Concatenation as native span copies — pure data movement, so the
    /// bits are the inputs' bits by construction.  Each arg contributes
    /// `inner` contiguous elements per outer block (`args` entries are
    /// `(src, per-lane numel, inner)`).
    Concat { args: Vec<(Src, usize, usize)>, outer: usize, out: usize, out_len: usize },
    /// Any other instruction, routed through the reference operator
    /// implementations (bit-identity by sharing the code path).
    Single { op: PrimOp, args: Vec<(Src, Shape)>, out: usize, out_len: usize },
}

/// A kernel program compiled for one batch-size class, ready to execute
/// lanes against a [`PreparedLaunch`] without allocating.
#[derive(Debug)]
pub struct CompiledKernel {
    segments: Vec<Segment>,
    /// Total flat-scratch length in *per-lane* elements (the buffer is
    /// `flat_len × lanes` at execution time).
    flat_len: usize,
    /// Tile-buffer length: max fused-segment depth × tile width.
    tiles_len: usize,
    /// Chunk width of fused segments (the size-class specialization axis —
    /// numerically invisible: elementwise steps are per-element pure).
    tile_w: usize,
    /// Element count per input slot, parallel to `KernelProgram::inputs`.
    input_numels: Vec<usize>,
    /// Per-lane offset of each input slot's lane-major materialization in
    /// the inputs scratch, for slots consumed by fused segments (`None`
    /// for slots only matmul / fallback instructions read — those read the
    /// arena directly).
    input_off: Vec<Option<usize>>,
    /// Total inputs-scratch length in per-lane elements.
    inputs_len: usize,
    /// `(flat offset, numel)` per program output, parallel to
    /// `KernelProgram::outputs`.
    outputs: Vec<(usize, usize)>,
}

impl CompiledKernel {
    /// Lowers `program` for the given batch-size class.  Total: every
    /// instruction either fuses, monomorphizes or falls back to the shared
    /// reference implementation, so compilation cannot fail.
    pub(crate) fn compile(program: &KernelProgram, size_class: usize) -> CompiledKernel {
        // Larger steady-state batches amortize loop overhead over more
        // lanes, so they get wider tiles (fused chunks span the whole
        // lanes × numel range).  Any width computes the same bits.
        let tile_w = match size_class {
            0 | 1 => 32,
            2 | 3 => 64,
            _ => 128,
        };

        let max_reg = program
            .instrs
            .iter()
            .map(|k| k.out.0)
            .chain(program.inputs.iter().map(|i| i.reg.0))
            .chain(program.instrs.iter().flat_map(|k| k.args.iter().map(|a| a.0)))
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0);

        // Register tables: input slot, producing instruction, shape.
        let mut reg_input: Vec<Option<usize>> = vec![None; max_reg];
        for (si, inp) in program.inputs.iter().enumerate() {
            reg_input[inp.reg.0 as usize] = Some(si);
        }
        let mut reg_shape: Vec<Option<&Shape>> = vec![None; max_reg];
        for inp in &program.inputs {
            reg_shape[inp.reg.0 as usize] = Some(&inp.shape);
        }
        for k in &program.instrs {
            reg_shape[k.out.0 as usize] = Some(&k.shape);
        }

        // An instruction fuses when it is elementwise and every operand has
        // exactly the output shape (no broadcast — identity index maps).
        let fusable = |k: &KInstr| -> bool {
            (k.op.unary_kind().is_some() || k.op.binary_kind().is_some())
                && k.args.iter().all(|a| reg_shape[a.0 as usize] == Some(&k.shape))
        };

        // Greedy segmentation: maximal runs of fusable instructions with a
        // common element count (they share one chunk loop).
        let mut seg_of: Vec<usize> = vec![0; program.instrs.len()];
        let mut seg_ranges: Vec<Range<usize>> = Vec::new();
        let mut i = 0;
        while i < program.instrs.len() {
            let start = i;
            if fusable(&program.instrs[i]) {
                let numel = program.instrs[i].shape.numel();
                i += 1;
                while i < program.instrs.len()
                    && fusable(&program.instrs[i])
                    && program.instrs[i].shape.numel() == numel
                {
                    i += 1;
                }
            } else {
                i += 1;
            }
            for s in seg_of.iter_mut().take(i).skip(start) {
                *s = seg_ranges.len();
            }
            seg_ranges.push(start..i);
        }

        // A fused instruction materializes (sinks) when its register is
        // consumed by another segment or escapes the kernel.
        let mut instr_of_reg: Vec<Option<usize>> = vec![None; max_reg];
        for (ii, k) in program.instrs.iter().enumerate() {
            instr_of_reg[k.out.0 as usize] = Some(ii);
        }
        let mut materialize: Vec<bool> = vec![false; program.instrs.len()];
        for (ii, k) in program.instrs.iter().enumerate() {
            let seg = seg_of[ii];
            let run_len = seg_ranges[seg].len();
            let is_fused_run = run_len > 1 || fusable(k);
            if !is_fused_run {
                materialize[ii] = true;
                continue;
            }
            let escapes = program.outputs.iter().any(|(_, r, _)| *r == k.out);
            let consumed_outside = program
                .instrs
                .iter()
                .enumerate()
                .any(|(jj, kj)| seg_of[jj] != seg && kj.args.contains(&k.out));
            materialize[ii] = escapes || consumed_outside;
        }

        // Flat register allocation in instruction order: operands of any
        // instruction therefore live strictly below its own output offset,
        // which is what lets execution split the flat buffer into disjoint
        // read/write halves.
        let mut flat_off: Vec<Option<usize>> = vec![None; max_reg];
        let mut flat_len = 0usize;
        for (ii, k) in program.instrs.iter().enumerate() {
            if materialize[ii] {
                flat_off[k.out.0 as usize] = Some(flat_len);
                flat_len += k.shape.numel();
            }
        }

        // Lower each segment.
        let mut segments: Vec<Segment> = Vec::with_capacity(seg_ranges.len());
        let mut max_depth = 0usize;
        for range in &seg_ranges {
            let run = &program.instrs[range.clone()];
            let run_fused = run.len() > 1 || (run.len() == 1 && fusable(&run[0]));
            if run_fused {
                // Step-local register map for Tile operands.
                let mut step_of_reg: Vec<Option<usize>> = vec![None; max_reg];
                let mut steps = Vec::with_capacity(run.len());
                for (si, k) in run.iter().enumerate() {
                    // Sinked steps write their flat region directly (no
                    // tile detour), so intra-segment consumers of a sinked
                    // register read it back as `Flat` — steps within a
                    // chunk run in order, so the chunk's values are there.
                    let src = |a: crate::kernel::RegId| -> Src {
                        if let Some(slot) = reg_input[a.0 as usize] {
                            Src::Input(slot)
                        } else if let Some(off) = flat_off[a.0 as usize] {
                            Src::Flat(off)
                        } else {
                            let step = step_of_reg[a.0 as usize]
                                .expect("unsinked operand is an earlier step");
                            Src::Tile(step)
                        }
                    };
                    let op = if let Some(kind) = k.op.unary_kind() {
                        FusedOp::Unary(kind, src(k.args[0]))
                    } else {
                        let kind = k.op.binary_kind().expect("fusable is elementwise");
                        FusedOp::Binary(kind, src(k.args[0]), src(k.args[1]))
                    };
                    steps.push(FusedStep { op, sink: flat_off[k.out.0 as usize] });
                    step_of_reg[k.out.0 as usize] = Some(si);
                }
                max_depth = max_depth.max(steps.len());
                segments.push(Segment::Fused { steps, numel: run[0].shape.numel() });
            } else {
                let k = &run[0];
                let src = |a: crate::kernel::RegId| -> Src {
                    if let Some(slot) = reg_input[a.0 as usize] {
                        Src::Input(slot)
                    } else {
                        Src::Flat(flat_off[a.0 as usize].expect("materialized register"))
                    }
                };
                let out = flat_off[k.out.0 as usize].expect("non-fused instr materializes");
                let matmul_dims = if k.op == PrimOp::MatMul {
                    let la = reg_shape[k.args[0].0 as usize].expect("arg shape");
                    let lb = reg_shape[k.args[1].0 as usize].expect("arg shape");
                    match (la.as_matrix(), lb.as_matrix()) {
                        (Ok((m, kk)), Ok((_, n))) if k.shape.numel() == m * n => Some((m, kk, n)),
                        _ => None,
                    }
                } else {
                    None
                };
                // Lane-invariant instruction: all operands shared (or none,
                // e.g. constant fills) → every lane computes the same bits,
                // so it executes once and broadcasts.
                let const_args = {
                    let mut args = Vec::with_capacity(k.args.len());
                    let all_shared = k.args.iter().all(|a| match src(*a) {
                        Src::Input(slot) if program.inputs[slot].class == ArgClass::Shared => {
                            let sh = reg_shape[a.0 as usize].expect("arg shape resolved").clone();
                            args.push((slot, sh));
                            true
                        }
                        _ => false,
                    });
                    all_shared.then_some(args)
                };
                // Concatenation decomposed into per-outer-block span copies
                // (requires every arg to agree on the outer extent).
                let concat_args = if let PrimOp::Concat { axis } = &k.op {
                    let axis = *axis;
                    let mut args = Vec::with_capacity(k.args.len());
                    let mut outer = None;
                    let mut total = 0usize;
                    let uniform = k.args.iter().all(|a| {
                        let sh = reg_shape[a.0 as usize].expect("arg shape resolved");
                        if axis >= sh.rank() {
                            return false;
                        }
                        let o: usize = sh.dims()[..axis].iter().product();
                        let inner: usize = sh.dims()[axis..].iter().product();
                        args.push((src(*a), sh.numel(), inner));
                        total += sh.numel();
                        *outer.get_or_insert(o) == o
                    });
                    (uniform && total == k.shape.numel()).then(|| (args, outer.unwrap_or(1)))
                } else {
                    None
                };
                if let Some((m, kk, n)) = matmul_dims {
                    let b = src(k.args[1]);
                    // Lane-shared right operand → the batch stacks into one
                    // (lanes·m) × k × n multiply (row-independent, so the
                    // stack computes the per-lane bits exactly).
                    let stacked = matches!(
                        b,
                        Src::Input(slot) if program.inputs[slot].class == ArgClass::Shared
                    );
                    segments.push(Segment::MatMul {
                        a: src(k.args[0]),
                        b,
                        out,
                        m,
                        k: kk,
                        n,
                        stacked,
                    });
                } else if let Some(args) = const_args {
                    segments.push(Segment::Const {
                        op: k.op.clone(),
                        args,
                        out,
                        out_len: k.shape.numel(),
                    });
                } else if let Some((args, outer)) = concat_args {
                    segments.push(Segment::Concat { args, outer, out, out_len: k.shape.numel() });
                } else {
                    let args = k
                        .args
                        .iter()
                        .map(|a| {
                            let sh = reg_shape[a.0 as usize].expect("arg shape resolved").clone();
                            (src(*a), sh)
                        })
                        .collect();
                    segments.push(Segment::Single {
                        op: k.op.clone(),
                        args,
                        out,
                        out_len: k.shape.numel(),
                    });
                }
            }
        }

        let outputs = program
            .outputs
            .iter()
            .map(|(_, r, sh)| (flat_off[r.0 as usize].expect("output materialized"), sh.numel()))
            .collect();

        // Input slots consumed by fused segments — or as the left stack of
        // a stacked matmul — get a lane-major materialization slot;
        // everything else reads the arena directly.
        let input_numels: Vec<usize> = program.inputs.iter().map(|i| i.shape.numel()).collect();
        let mut materialized = vec![false; program.inputs.len()];
        for seg in &segments {
            match seg {
                Segment::Fused { steps, .. } => {
                    for step in steps {
                        let mut mark = |s: Src| {
                            if let Src::Input(slot) = s {
                                materialized[slot] = true;
                            }
                        };
                        match step.op {
                            FusedOp::Unary(_, a) => mark(a),
                            FusedOp::Binary(_, a, b) => {
                                mark(a);
                                mark(b);
                            }
                        }
                    }
                }
                Segment::MatMul { a: Src::Input(slot), stacked: true, .. } => {
                    materialized[*slot] = true;
                }
                _ => {}
            }
        }
        let mut inputs_len = 0usize;
        let input_off = materialized
            .iter()
            .zip(&input_numels)
            .map(|(&used, &numel)| {
                used.then(|| {
                    let off = inputs_len;
                    inputs_len += numel;
                    off
                })
            })
            .collect();

        CompiledKernel {
            segments,
            flat_len,
            tiles_len: max_depth * tile_w,
            tile_w,
            input_numels,
            input_off,
            inputs_len,
            outputs,
        }
    }

    /// Executes the lanes `lane_range` of `prep` through a shared arena
    /// view, using `flat`/`tiles`/`inputs` as the (reused) working memory.
    ///
    /// Registers and materialized inputs are stored *batch-flat*: register
    /// `r` at per-lane offset `off` owns `flat[off × L .. (off + numel) × L]`
    /// (lane-major, `L` = lane count of this work unit), so fused segments
    /// sweep all lanes in one chunked pass and escaping registers leave as
    /// a single copy per output (reserved output regions are lane-major
    /// with exactly the same layout).
    ///
    /// Pure with respect to the arena apart from writes into the launch's
    /// own reserved output regions at lane-deterministic offsets — the same
    /// contract as [`crate::exec::execute_prepared`], so any partition of
    /// the lane range across workers produces identical memory contents
    /// (elementwise steps are per-element pure; matmul runs per lane).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] on kernel failures.
    pub(crate) fn execute(
        &self,
        view: &ExecView<'_>,
        prep: &PreparedLaunch,
        lane_range: Range<usize>,
        flat: &mut Vec<f32>,
        tiles: &mut Vec<f32>,
        inputs: &mut Vec<f32>,
    ) -> Result<(), TensorError> {
        debug_assert!(lane_range.end <= prep.batch);
        debug_assert_eq!(prep.slots.len(), self.input_numels.len());
        let l0 = lane_range.start;
        let lanes = lane_range.len();
        if lanes == 0 {
            return Ok(());
        }
        flat.resize(self.flat_len * lanes, 0.0);
        tiles.resize(self.tiles_len, 0.0);
        inputs.resize(self.inputs_len * lanes, 0.0);

        // Materialize fused-consumed input slots lane-major (shared
        // operands broadcast), so every fused operand below is one
        // contiguous slice.  SAFETY: inputs were fully written before this
        // launch's execution phase (uploads, earlier flushes' outputs,
        // gather staging filled during preparation) and no concurrent work
        // unit writes them.
        for ((slot, &numel), off) in prep.slots.iter().zip(&self.input_numels).zip(&self.input_off)
        {
            let Some(off) = off else { continue };
            let base = off * lanes;
            match &slot.offsets {
                // Lane-contiguous in the arena (gather staging, the packed
                // outputs of an earlier batched launch): one copy covers
                // every lane.
                SlotOffsets::Strided { stride, .. } if *stride == numel => {
                    let src = unsafe { view.read(slot.offset(l0), lanes * numel) };
                    inputs[base..base + lanes * numel].copy_from_slice(src);
                }
                // Shared operand: read once, broadcast.
                SlotOffsets::Same(_) => {
                    let src = unsafe { view.read(slot.offset(l0), numel) };
                    for chunk in inputs[base..base + lanes * numel].chunks_exact_mut(numel) {
                        chunk.copy_from_slice(src);
                    }
                }
                _ => {
                    for l in 0..lanes {
                        let src = unsafe { view.read(slot.offset(l0 + l), numel) };
                        inputs[base + l * numel..base + (l + 1) * numel].copy_from_slice(src);
                    }
                }
            }
        }

        let input_slice = |slot: usize, lane: usize, numel: usize| -> &[f32] {
            // SAFETY: as for the materialization loop above.
            unsafe { view.read(prep.slots[slot].offset(lane), numel) }
        };

        for seg in &self.segments {
            match seg {
                Segment::Fused { steps, numel } => {
                    let total = numel * lanes;
                    let mut chunk = 0;
                    while chunk < total {
                        let len = (total - chunk).min(self.tile_w);
                        for (si, step) in steps.iter().enumerate() {
                            let (before, cur) = tiles.split_at_mut(si * self.tile_w);
                            // Sinked steps write their flat region directly;
                            // their operands' flat offsets are strictly
                            // smaller (registers allocate in instruction
                            // order), so the split keeps sources readable.
                            let (flat_lo, dst) = match step.sink {
                                Some(off) => {
                                    let (lo, hi) = flat.split_at_mut(off * lanes);
                                    (&*lo, &mut hi[chunk..chunk + len])
                                }
                                None => (flat.as_slice(), &mut cur[..len]),
                            };
                            let src = |s: Src| -> &[f32] {
                                match s {
                                    Src::Input(slot) => {
                                        let base =
                                            self.input_off[slot].expect("fused input slot") * lanes;
                                        &inputs[base + chunk..base + chunk + len]
                                    }
                                    Src::Flat(off) => {
                                        let base = off * lanes;
                                        &flat_lo[base + chunk..base + chunk + len]
                                    }
                                    Src::Tile(step) => {
                                        &before[step * self.tile_w..step * self.tile_w + len]
                                    }
                                }
                            };
                            match step.op {
                                FusedOp::Unary(kind, a) => map_unary(kind, src(a), dst),
                                FusedOp::Binary(kind, a, b) => {
                                    map_binary(kind, src(a), src(b), dst)
                                }
                            }
                        }
                        chunk += len;
                    }
                }
                Segment::MatMul { a, b, out, m, k, n, stacked } => {
                    let (lo, hi) = flat.split_at_mut(*out * lanes);
                    if *stacked {
                        // Lane-shared right operand: the lane-major left
                        // matrices are one (lanes·m) × k stack, so the whole
                        // batch is a single multiply.  matmul_raw computes
                        // each output row from its own left row and the
                        // shared right operand in the same k order, so the
                        // stacked call produces the per-lane bits exactly.
                        let sa = match a {
                            Src::Input(slot) => {
                                let base =
                                    self.input_off[*slot].expect("stacked matmul lhs") * lanes;
                                &inputs[base..base + lanes * m * k]
                            }
                            Src::Flat(off) => &lo[off * lanes..][..lanes * m * k],
                            Src::Tile(_) => unreachable!("tiles never cross segments"),
                        };
                        let sb = match b {
                            Src::Input(slot) => input_slice(*slot, l0, k * n),
                            _ => unreachable!("stacked matmul rhs is a shared input"),
                        };
                        matmul_raw_blocked(sa, sb, &mut hi[..lanes * m * n], lanes * m, *k, *n);
                    } else {
                        for l in 0..lanes {
                            let sa = match a {
                                Src::Input(slot) => input_slice(*slot, l0 + l, m * k),
                                Src::Flat(off) => &lo[off * lanes + l * (m * k)..][..m * k],
                                Src::Tile(_) => unreachable!("tiles never cross segments"),
                            };
                            let sb = match b {
                                Src::Input(slot) => input_slice(*slot, l0 + l, k * n),
                                Src::Flat(off) => &lo[off * lanes + l * (k * n)..][..k * n],
                                Src::Tile(_) => unreachable!("tiles never cross segments"),
                            };
                            matmul_raw(sa, sb, &mut hi[l * (m * n)..][..m * n], *m, *k, *n);
                        }
                    }
                }
                Segment::Const { op, args, out, out_len } => {
                    let region = &mut flat[*out * lanes..][..lanes * out_len];
                    let ins: Vec<(&[f32], &Shape)> = args
                        .iter()
                        .map(|(slot, sh)| (input_slice(*slot, l0, sh.numel()), sh))
                        .collect();
                    execute_slices(op, &ins, &mut region[..*out_len])?;
                    let (first, rest) = region.split_at_mut(*out_len);
                    for chunk in rest.chunks_exact_mut(*out_len) {
                        chunk.copy_from_slice(first);
                    }
                }
                Segment::Concat { args, outer, out, out_len } => {
                    let (lo, hi) = flat.split_at_mut(*out * lanes);
                    let dst = &mut hi[..lanes * out_len];
                    for l in 0..lanes {
                        let mut at = l * out_len;
                        for o in 0..*outer {
                            for (s, numel, inner) in args {
                                let src: &[f32] = match s {
                                    Src::Input(slot) => input_slice(*slot, l0 + l, *numel),
                                    Src::Flat(off) => &lo[off * lanes + l * numel..][..*numel],
                                    Src::Tile(_) => {
                                        unreachable!("tiles never cross segments")
                                    }
                                };
                                dst[at..at + inner]
                                    .copy_from_slice(&src[o * inner..(o + 1) * inner]);
                                at += inner;
                            }
                        }
                    }
                }
                Segment::Single { op, args, out, out_len } => {
                    let (lo, hi) = flat.split_at_mut(*out * lanes);
                    for l in 0..lanes {
                        let ins: Vec<(&[f32], &Shape)> = args
                            .iter()
                            .map(|(s, sh)| {
                                let sl = match s {
                                    Src::Input(slot) => input_slice(*slot, l0 + l, sh.numel()),
                                    Src::Flat(off) => {
                                        &lo[off * lanes + l * sh.numel()..][..sh.numel()]
                                    }
                                    Src::Tile(_) => {
                                        unreachable!("tiles never cross segments")
                                    }
                                };
                                (sl, sh)
                            })
                            .collect();
                        execute_slices(op, &ins, &mut hi[l * out_len..][..*out_len])?;
                    }
                }
            }
        }

        // Escaping registers leave in one lane-major copy per output.
        // SAFETY: each output region was freshly allocated for this launch
        // and this lane sub-range is written by exactly one work unit —
        // concurrent writes are disjoint by construction.
        for (&(off, n), handle) in self.outputs.iter().zip(&prep.out_handles) {
            let dst = unsafe { view.write(handle.offset() + l0 * n, lanes * n) };
            dst.copy_from_slice(&flat[off * lanes..off * lanes + lanes * n]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use acrobat_analysis::{analyze, AnalysisOptions};
    use acrobat_ir::{parse_module, typeck};
    use acrobat_tensor::batch::BatchMode;
    use acrobat_tensor::{DeviceMem, Tensor};

    use crate::backend::{BackendScratch, KernelBackend, SpecializedBackend};
    use crate::exec::{bind_args, finish_prepared, prepare_batched_kernel};
    use crate::kernel::KernelId;

    fn compile(src: &str) -> (acrobat_analysis::AnalysisResult, crate::KernelLibrary) {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let a = analyze(m, AnalysisOptions::default()).unwrap();
        let lib = crate::KernelLibrary::build(&a);
        (a, lib)
    }

    /// The compiled path must agree with the interpreter bit for bit on a
    /// kernel mixing matmul, a fused same-shape elementwise chain and an
    /// odd element count that exercises the chunk-loop remainder.
    #[test]
    fn compiled_matches_interp_bits() {
        const D: usize = 37; // > tile width 32: main chunk + remainder tail
        let (_, lib) = compile(&format!(
            "def @main($w: Tensor[({D}, {D})], $b: Tensor[(1, {D})], %x: Tensor[(1, {D})]) \
             -> Tensor[(1, {D})] {{
                tanh(add($b, sigmoid(relu(matmul(%x, $w)))))
            }}"
        ));
        assert_eq!(lib.len(), 1);
        let program = lib.kernel(KernelId(0));

        for &(batch, mode) in &[
            (1, BatchMode::GatherFused),
            (5, BatchMode::GatherFused),
            (5, BatchMode::ExplicitGather),
        ] {
            let mut mem = DeviceMem::new(1 << 20);
            let w = Tensor::from_fn(&[D, D], |i| ((i as f32) * 0.37).sin());
            let b = Tensor::from_fn(&[1, D], |i| (i as f32) * 0.05 - 0.3);
            let dw = mem.upload(&w).unwrap();
            let db = mem.upload(&b).unwrap();
            let mut lanes = Vec::new();
            for l in 0..batch {
                let x = Tensor::from_fn(&[1, D], |i| ((i + l) as f32) * 0.11 - 1.0);
                let dx = mem.upload(&x).unwrap();
                let mut lane = Vec::new();
                for input in &program.inputs {
                    match input.class {
                        acrobat_analysis::ArgClass::Batched => lane.push(dx.clone()),
                        acrobat_analysis::ArgClass::Shared => {
                            if input.shape.dims() == [D, D] {
                                lane.push(dw.clone());
                            } else {
                                lane.push(db.clone());
                            }
                        }
                    }
                }
                lanes.push(lane);
            }
            let args = bind_args(program, &lanes);

            // Checked execution re-runs the launch through the interpreter
            // and panics on any output-bit divergence.
            let backend = SpecializedBackend::new(lib.len(), 1);
            let prep =
                prepare_batched_kernel(&mut mem, program, &args.as_ref(), batch, mode).unwrap();
            let sel = backend.select(program, batch);
            assert!(sel.is_fresh_compile(), "threshold 1 compiles on first launch");
            let mut scratch = BackendScratch::default();
            sel.execute(&mem.exec_view(), program, &prep, 0..batch, &mut scratch, true).unwrap();
            let outs = finish_prepared(&mem, &prep).unwrap();
            assert_eq!(outs.len(), 1);

            // Second select hits the cache.
            let sel2 = backend.select(program, batch);
            assert!(sel2.is_compiled() && !sel2.is_fresh_compile());
            assert_eq!(backend.compiled_count(), 1);

            // Sanity: outputs match a host-side reference within tolerance.
            for (l, out) in outs[0].iter().enumerate() {
                let x = Tensor::from_fn(&[1, D], |i| ((i + l) as f32) * 0.11 - 1.0);
                let mm =
                    acrobat_tensor::execute(&acrobat_tensor::PrimOp::MatMul, &[&x, &w]).unwrap();
                let rl = acrobat_tensor::execute(&acrobat_tensor::PrimOp::Relu, &[&mm]).unwrap();
                let sg = acrobat_tensor::execute(&acrobat_tensor::PrimOp::Sigmoid, &[&rl]).unwrap();
                let ad = acrobat_tensor::execute(&acrobat_tensor::PrimOp::Add, &[&b, &sg]).unwrap();
                let th = acrobat_tensor::execute(&acrobat_tensor::PrimOp::Tanh, &[&ad]).unwrap();
                let got = mem.download(out).unwrap();
                assert!(got.allclose(&th, 1e-6), "lane {l} diverged from host reference");
            }
        }
    }
}
