//! End-to-end tests of the full static-analysis pipeline on model-scale
//! programs, including the paper's flagship examples: the RNN of Listing 1
//! (hoisting + phases) and the BiRNN of §C.1 (duplication).

use acrobat_analysis::{analyze, AnalysisOptions, ArgClass};
use acrobat_ir::{parse_module, typeck};

const RNN_PROGRAM: &str = r#"
    def @rnn(%inps: List[Tensor[(1, 8)]], %state: Tensor[(1, 8)],
             $bias: Tensor[(1, 8)], $i_wt: Tensor[(8, 8)], $h_wt: Tensor[(8, 8)])
        -> List[Tensor[(1, 8)]] {
        match %inps {
            Nil => Nil,
            Cons(%inp, %tail) => {
                let %inp_linear = add($bias, matmul(%inp, $i_wt));
                let %new_state = sigmoid(add(%inp_linear, matmul(%state, $h_wt)));
                Cons(%new_state, @rnn(%tail, %new_state, $bias, $i_wt, $h_wt))
            }
        }
    }
    def @main($bias: Tensor[(1, 8)], $i_wt: Tensor[(8, 8)], $h_wt: Tensor[(8, 8)],
              $init: Tensor[(1, 8)], $c_wt: Tensor[(8, 4)], $c_bias: Tensor[(1, 4)],
              %inps: List[Tensor[(1, 8)]]) -> List[Tensor[(1, 4)]] {
        let %states = @rnn(%inps, $init, $bias, $i_wt, $h_wt);
        map(fn(%p) { relu(add($c_bias, matmul(%p, $c_wt))) }, %states)
    }
"#;

const BIRNN_PROGRAM: &str = r#"
    def @rnn(%inps: List[Tensor[(1, 8)]], %state: Tensor[(1, 8)], $w: Tensor[(8, 8)])
        -> Tensor[(1, 8)] {
        match %inps {
            Nil => %state,
            Cons(%inp, %tail) => @rnn(%tail, tanh(matmul(add(%inp, %state), $w)), $w)
        }
    }
    def @main($wf: Tensor[(8, 8)], $wb: Tensor[(8, 8)], $h0: Tensor[(1, 8)],
              %inps: List[Tensor[(1, 8)]]) -> Tensor[(1, 8)] {
        let %f = @rnn(%inps, $h0, $wf);
        let %b = @rnn(%inps, $h0, $wb);
        add(%f, %b)
    }
"#;

#[test]
fn rnn_pipeline_produces_all_artifacts() {
    let m = typeck::check_module(parse_module(RNN_PROGRAM).unwrap()).unwrap();
    let r = analyze(m, AnalysisOptions::default()).unwrap();

    // Every op site classified.
    for (site, prim) in &r.module.op_prims {
        assert!(r.arg_classes.contains_key(site), "unclassified op site {site:?} ({prim})");
    }
    // Weight arguments shared, data arguments batched.
    let shared = r.arg_classes.values().flatten().filter(|c| **c == ArgClass::Shared).count();
    assert!(shared >= 5, "params + biases should be shared, got {shared}");

    // The input linear transform is hoisted.
    assert!(!r.hoisted.is_empty(), "RNN input transform must hoist");

    // One phase boundary between the recursive stage and the output stage.
    assert_eq!(r.phase_boundaries.len(), 1);

    // Fusion produced fewer groups than sites.
    let sites = r.blocks.site_count();
    let groups: usize = r.blocks.blocks.iter().map(|b| b.groups.len()).sum();
    assert!(groups < sites, "fusion should merge ({groups} groups, {sites} sites)");

    // Site info covers every site and marks closers consistently.
    for block in &r.blocks.blocks {
        for node in &block.sites {
            let info = r.site_info[&node.site];
            assert_eq!(info.block, block.id);
        }
        let closers = block.sites.iter().filter(|s| r.site_info[&s.site].closes_block).count();
        assert_eq!(closers, 1, "exactly one site closes each block");
    }
}

#[test]
fn birnn_pipeline_duplicates_and_shares() {
    let m = typeck::check_module(parse_module(BIRNN_PROGRAM).unwrap()).unwrap();
    let r = analyze(m, AnalysisOptions::default()).unwrap();

    // @rnn was duplicated into two copies.
    let rnn_copies = r.module.functions.keys().filter(|n| n.starts_with("rnn__c")).count();
    assert_eq!(rnn_copies, 2, "functions: {:?}", r.module.functions.keys());
    assert!(!r.module.functions.contains_key("rnn"));

    // Every matmul weight is shared after duplication.
    for (site, prim) in &r.module.op_prims {
        if *prim == acrobat_tensor::PrimOp::MatMul {
            assert_eq!(
                r.arg_classes[site][1],
                ArgClass::Shared,
                "post-duplication weights must be shared"
            );
        }
    }
}

#[test]
fn duplication_disabled_keeps_single_copy() {
    let m = typeck::check_module(parse_module(BIRNN_PROGRAM).unwrap()).unwrap();
    let opts = AnalysisOptions { duplication: false, ..Default::default() };
    let r = analyze(m, opts).unwrap();
    assert!(r.module.functions.contains_key("rnn"));
    // Without duplication the weight argument degrades to batched.
    let degraded = r
        .module
        .op_prims
        .iter()
        .filter(|(_, p)| **p == acrobat_tensor::PrimOp::MatMul)
        .any(|(site, _)| r.arg_classes[site][1] == ArgClass::Batched);
    assert!(degraded);
}

#[test]
fn options_none_disables_everything() {
    let m = typeck::check_module(parse_module(RNN_PROGRAM).unwrap()).unwrap();
    let r = analyze(m, AnalysisOptions::none()).unwrap();
    assert!(r.hoisted.is_empty());
    assert!(r.phase_boundaries.is_empty());
    assert!(r.ghosts.is_empty());
    let sites = r.blocks.site_count();
    let groups: usize = r.blocks.blocks.iter().map(|b| b.groups.len()).sum();
    assert_eq!(groups, sites, "no fusion -> one group per site");
}

#[test]
fn no_main_is_an_error() {
    let m = typeck::check_module(parse_module("def @f(%x: Int) -> Int { %x }").unwrap()).unwrap();
    assert!(matches!(analyze(m, AnalysisOptions::default()), Err(acrobat_ir::IrError::NoMain)));
}
