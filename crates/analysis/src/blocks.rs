//! Static-block discovery (§A, §B.2 of the paper).
//!
//! A *static block* is a maximal straight-line region of tensor-operator
//! call sites with no intervening control flow — the paper's observation is
//! that dynamic control flow *surrounds* such static sub-graphs.  Blocks are
//! the unit of grain-size coarsening (one DFG node per block instead of one
//! per operator) and the scope within which kernel fusion operates.
//!
//! Besides the blocks themselves this pass records intra-block def-use
//! information: for every operator argument, whether it is produced by an
//! earlier operator in the same block (an *internal* edge — a fusion
//! candidate) or arrives from outside, and whether an operator's result
//! escapes the block (escaping results cannot be fused away).

use std::collections::{BTreeMap, HashMap};

use acrobat_ir::{Callee, Expr, ExprId, ExprKind, Module, Pattern};

use crate::fusion::FusionGroup;
use crate::SiteInfo;

/// Identifier of a static block, unique within a module analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// One operator call site within a block, with its local dataflow.
#[derive(Debug, Clone)]
pub struct SiteNode {
    /// The operator call expression.
    pub site: ExprId,
    /// Argument expression ids (for shape lookups).
    pub arg_exprs: Vec<ExprId>,
    /// For each argument: the index (into [`StaticBlock::sites`]) of the
    /// producing site when the value is produced inside this block.
    pub arg_sources: Vec<Option<usize>>,
    /// For each *external* argument: the variable name it loads, when it is
    /// a direct variable reference (drives horizontal-fusion sharing).
    pub arg_vars: Vec<Option<String>>,
    /// How many times this site's result is consumed by later operators in
    /// the same block.
    pub internal_uses: usize,
    /// Whether the result is consumed by anything other than an operator in
    /// this block (returned, passed to a call, used in another block…).
    pub escapes: bool,
}

/// A static block: straight-line operator sites in execution order.
#[derive(Debug, Clone)]
pub struct StaticBlock {
    /// Block id.
    pub id: BlockId,
    /// Enclosing function.
    pub func: String,
    /// Sites in execution order.
    pub sites: Vec<SiteNode>,
    /// Fusion groups (a partition of `sites`), filled by
    /// [`crate::fusion::plan_fusion`].
    pub groups: Vec<FusionGroup>,
}

/// All static blocks of a module.
#[derive(Debug, Clone, Default)]
pub struct BlockMap {
    /// Blocks in discovery order.
    pub blocks: Vec<StaticBlock>,
}

impl BlockMap {
    /// Looks up the block containing an operator site.
    pub fn block_of(&self, site: ExprId) -> Option<&StaticBlock> {
        self.blocks.iter().find(|b| b.sites.iter().any(|s| s.site == site))
    }

    /// Total number of operator sites across all blocks.
    pub fn site_count(&self) -> usize {
        self.blocks.iter().map(|b| b.sites.len()).sum()
    }
}

/// Discovers static blocks for every function of a type-checked module.
pub fn find_blocks(module: &Module) -> BlockMap {
    let mut finder =
        Finder { blocks: Vec::new(), current: None, env: HashMap::new(), escapes: BTreeMap::new() };
    for f in module.functions.values() {
        finder.env.clear();
        finder.current = None;
        finder.walk_consumed(&f.body, &f.name);
        finder.current = None;
    }
    // Apply escape marks recorded after a block closed.
    let escapes = std::mem::take(&mut finder.escapes);
    let mut map = BlockMap { blocks: finder.blocks };
    for block in &mut map.blocks {
        for node in &mut block.sites {
            if escapes.contains_key(&node.site) {
                node.escapes = true;
            }
        }
    }
    map
}

/// Builds the per-site position table from a fusion-annotated block map.
pub fn site_info(map: &BlockMap) -> BTreeMap<ExprId, SiteInfo> {
    let mut out = BTreeMap::new();
    for block in &map.blocks {
        let last_block_site = block.sites.last().map(|s| s.site);
        for group in &block.groups {
            let last_group_site = group.sites.last().copied();
            for &site in &group.sites {
                out.insert(
                    site,
                    SiteInfo {
                        block: block.id,
                        group: group.id,
                        closes_group: Some(site) == last_group_site,
                        closes_block: Some(site) == last_block_site,
                    },
                );
            }
        }
    }
    out
}

/// Where a value came from, for def-use tracking.
#[derive(Debug, Clone)]
enum Source {
    /// Produced by an operator site (block index in `blocks`, site index).
    Site { block: usize, idx: usize, site: ExprId },
    /// A plain variable reference.
    Var(String),
    /// Anything else.
    Other,
}

struct Finder {
    blocks: Vec<StaticBlock>,
    /// Index into `blocks` of the block currently being grown.
    current: Option<usize>,
    /// Variable → source, within the current function.
    env: HashMap<String, Source>,
    /// Sites whose results escaped after their block closed.
    escapes: BTreeMap<ExprId, ()>,
}

impl Finder {
    fn break_block(&mut self) {
        self.current = None;
    }

    fn mark_escape(&mut self, src: &Source) {
        if let Source::Site { block, idx, site } = src {
            // The site may be in a closed block; record both ways.
            if let Some(b) = self.blocks.get_mut(*block) {
                if let Some(node) = b.sites.get_mut(*idx) {
                    node.escapes = true;
                    return;
                }
            }
            self.escapes.insert(*site, ());
        }
    }

    /// Walks `expr` and marks its resulting value as consumed by a
    /// non-operator context.
    fn walk_consumed(&mut self, expr: &Expr, func: &str) {
        let src = self.walk(expr, func);
        self.mark_escape(&src);
    }

    fn walk(&mut self, expr: &Expr, func: &str) -> Source {
        match &expr.kind {
            ExprKind::Var(name) => self.env.get(name).cloned().unwrap_or(Source::Var(name.clone())),
            ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::BoolLit(_)
            | ExprKind::RandRange { .. }
            | ExprKind::PhaseBoundary => Source::Other,
            ExprKind::Let { pat, value, body } => {
                let v = self.walk(value, func);
                match pat {
                    Pattern::Var(n) => {
                        self.env.insert(n.clone(), v);
                    }
                    Pattern::Wildcard => self.mark_escape(&v),
                    Pattern::Tuple(ns) => {
                        // Tuple components lose site identity (conservative).
                        self.mark_escape(&v);
                        for n in ns {
                            self.env.insert(n.clone(), Source::Other);
                        }
                    }
                }
                self.walk(body, func)
            }
            ExprKind::If { cond, then, els } => {
                self.walk_consumed(cond, func);
                self.break_block();
                self.walk_consumed(then, func);
                self.break_block();
                self.walk_consumed(els, func);
                self.break_block();
                Source::Other
            }
            ExprKind::Match { scrutinee, arms } => {
                self.walk_consumed(scrutinee, func);
                self.break_block();
                for arm in arms {
                    for b in &arm.binders {
                        self.env.insert(b.clone(), Source::Other);
                    }
                    self.walk_consumed(&arm.body, func);
                    self.break_block();
                }
                Source::Other
            }
            ExprKind::Call { callee, args } => {
                match callee {
                    Callee::Op { .. } => {
                        let mut arg_exprs = Vec::with_capacity(args.len());
                        let mut arg_srcs = Vec::with_capacity(args.len());
                        for a in args {
                            arg_exprs.push(a.id);
                            arg_srcs.push(self.walk(a, func));
                        }
                        // Open a block if none is active.
                        let bidx = match self.current {
                            Some(b) => b,
                            None => {
                                let id = BlockId(self.blocks.len() as u32);
                                self.blocks.push(StaticBlock {
                                    id,
                                    func: func.to_string(),
                                    sites: Vec::new(),
                                    groups: Vec::new(),
                                });
                                let b = self.blocks.len() - 1;
                                self.current = Some(b);
                                b
                            }
                        };
                        let mut arg_sources = Vec::with_capacity(args.len());
                        let mut arg_vars = Vec::with_capacity(args.len());
                        for s in &arg_srcs {
                            match s {
                                Source::Site { block, idx, .. } if *block == bidx => {
                                    self.blocks[bidx].sites[*idx].internal_uses += 1;
                                    arg_sources.push(Some(*idx));
                                    arg_vars.push(None);
                                }
                                Source::Site { .. } => {
                                    // Produced in an earlier block: external
                                    // input for us, escape for the producer.
                                    self.mark_escape(s);
                                    arg_sources.push(None);
                                    arg_vars.push(None);
                                }
                                Source::Var(v) => {
                                    arg_sources.push(None);
                                    arg_vars.push(Some(v.clone()));
                                }
                                Source::Other => {
                                    arg_sources.push(None);
                                    arg_vars.push(None);
                                }
                            }
                        }
                        let idx = self.blocks[bidx].sites.len();
                        self.blocks[bidx].sites.push(SiteNode {
                            site: expr.id,
                            arg_exprs,
                            arg_sources,
                            arg_vars,
                            internal_uses: 0,
                            escapes: false,
                        });
                        Source::Site { block: bidx, idx, site: expr.id }
                    }
                    _ => {
                        for a in args {
                            self.walk_consumed(a, func);
                        }
                        self.break_block();
                        Source::Other
                    }
                }
            }
            ExprKind::Tuple(parts) => {
                for p in parts {
                    self.walk_consumed(p, func);
                }
                Source::Other
            }
            ExprKind::Parallel(parts) => {
                self.break_block();
                for p in parts {
                    self.walk_consumed(p, func);
                    self.break_block();
                }
                Source::Other
            }
            ExprKind::Proj { tuple, .. } => {
                self.walk_consumed(tuple, func);
                Source::Other
            }
            ExprKind::Lambda { body, .. } => {
                let saved = self.current;
                self.current = None;
                self.walk_consumed(body, func);
                self.break_block();
                self.current = saved;
                Source::Other
            }
            ExprKind::Map { func: f, list } => {
                self.walk_consumed(list, func);
                self.break_block();
                if let ExprKind::Lambda { body, params } = &f.kind {
                    for p in params {
                        self.env.insert(p.name.clone(), Source::Other);
                    }
                    self.walk_consumed(body, func);
                } else {
                    self.walk_consumed(f, func);
                }
                self.break_block();
                Source::Other
            }
            ExprKind::ScalarBin { lhs, rhs, .. } => {
                self.walk_consumed(lhs, func);
                self.walk_consumed(rhs, func);
                Source::Other
            }
            ExprKind::ScalarUn { operand, .. } => {
                self.walk_consumed(operand, func);
                Source::Other
            }
            ExprKind::Sync { tensor, .. } => {
                self.walk_consumed(tensor, func);
                // A sync point forces DFG evaluation — hard block boundary.
                self.break_block();
                Source::Other
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_ir::{parse_module, typeck};

    fn blocks_of(src: &str) -> BlockMap {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        find_blocks(&m)
    }

    #[test]
    fn straight_line_is_one_block() {
        let map = blocks_of(
            "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                let %a = matmul(%x, $w);
                let %b = tanh(%a);
                relu(%b)
             }",
        );
        assert_eq!(map.blocks.len(), 1);
        let b = &map.blocks[0];
        assert_eq!(b.sites.len(), 3);
        // tanh's input is produced by site 0; relu's by site 1.
        assert_eq!(b.sites[1].arg_sources, vec![Some(0)]);
        assert_eq!(b.sites[2].arg_sources, vec![Some(1)]);
        // matmul result used once internally, does not escape.
        assert_eq!(b.sites[0].internal_uses, 1);
        assert!(!b.sites[0].escapes);
        // relu's result is the function return — escapes.
        assert!(b.sites[2].escapes);
    }

    #[test]
    fn control_flow_splits_blocks() {
        let map = blocks_of(
            "def @main(%x: Tensor[(1, 2)], %c: Bool) -> Tensor[(1, 2)] {
                let %a = relu(%x);
                let %b = if %c { tanh(%a) } else { sigmoid(%a) };
                neg(%b)
             }",
        );
        // relu | tanh | sigmoid | neg = 4 blocks.
        assert_eq!(map.blocks.len(), 4);
        // relu's result is consumed in *other* blocks → escapes.
        let relu_block = &map.blocks[0];
        assert!(relu_block.sites[0].escapes || relu_block.sites[0].internal_uses == 0);
    }

    #[test]
    fn nested_args_same_block() {
        let map = blocks_of(
            "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                sigmoid(add(matmul(%x, $w), %x))
             }",
        );
        assert_eq!(map.blocks.len(), 1);
        assert_eq!(map.blocks[0].sites.len(), 3);
        // Execution order: matmul, add, sigmoid.
        let adds = &map.blocks[0].sites[1];
        assert_eq!(adds.arg_sources[0], Some(0));
        assert_eq!(adds.arg_sources[1], None);
        assert_eq!(adds.arg_vars[1], Some("x".into()));
    }

    #[test]
    fn call_breaks_block() {
        let map = blocks_of(
            "def @f(%x: Tensor[(1, 2)]) -> Tensor[(1, 2)] { relu(%x) }
             def @main(%x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                let %a = tanh(%x);
                let %b = @f(%a);
                neg(sigmoid(%b))
             }",
        );
        // @f body: 1 block. @main: tanh | sigmoid+neg.
        assert_eq!(map.blocks.len(), 3);
        let main_blocks: Vec<_> = map.blocks.iter().filter(|b| b.func == "main").collect();
        assert_eq!(main_blocks.len(), 2);
        assert_eq!(main_blocks[1].sites.len(), 2);
        // tanh result escapes (consumed by the call).
        assert!(main_blocks[0].sites[0].escapes);
    }

    #[test]
    fn sync_breaks_block() {
        let map = blocks_of(
            "def @main(%x: Tensor[(1, 1)]) -> Tensor[(1, 1)] {
                let %a = relu(%x);
                let %s = item(%a);
                if %s > 0.5 { tanh(%a) } else { %a }
             }",
        );
        let main_blocks: Vec<_> = map.blocks.iter().filter(|b| b.func == "main").collect();
        assert!(main_blocks.len() >= 2);
        assert_eq!(main_blocks[0].sites.len(), 1, "sync closes the first block");
    }

    #[test]
    fn result_used_twice_counts_uses() {
        let map = blocks_of(
            "def @main(%x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                let %a = relu(%x);
                add(tanh(%a), sigmoid(%a))
             }",
        );
        assert_eq!(map.blocks.len(), 1);
        assert_eq!(map.blocks[0].sites[0].internal_uses, 2);
    }

    #[test]
    fn map_lambda_gets_own_block() {
        let map = blocks_of(
            "def @main($w: Tensor[(2, 2)], %xs: List[Tensor[(1, 2)]]) -> List[Tensor[(1, 2)]] {
                map(fn(%p) { relu(matmul(%p, $w)) }, %xs)
             }",
        );
        assert_eq!(map.blocks.len(), 1);
        assert_eq!(map.blocks[0].sites.len(), 2);
    }
}
