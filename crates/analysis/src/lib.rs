//! ACROBAT's static analyses (the compile-time half of the paper's hybrid
//! static+dynamic approach).
//!
//! Given a type-checked [`acrobat_ir::Module`], [`analyze`] runs the passes
//! below and returns an [`AnalysisResult`] that the AOT lowering
//! (`acrobat-vm`) and the batched-kernel generator (`acrobat-codegen`)
//! consume:
//!
//! 1. **Parameter-reuse taint analysis** ([`absval`], §5.1) — a 1-context
//!    sensitive interprocedural dataflow analysis that classifies every
//!    argument of every tensor-operator call site as *shared* (identical
//!    tensor for all instances in a mini-batch — typically a model
//!    parameter) or *batched*.
//! 2. **Code duplication** ([`dup`], §C.1) — when one function is reached
//!    with conflicting shared-value bindings (the paper's BiRNN example:
//!    `@rnn` called with forward and backward weights), the function is
//!    transitively duplicated per binding so each operator call site sees a
//!    single shared value.
//! 3. **Static blocks** ([`blocks`], §A) — maximal straight-line regions of
//!    operator calls; the unit of grain-size coarsening (§B.2).
//! 4. **Kernel fusion** ([`fusion`], §4, §C.1) — vertical (elementwise and
//!    memory operators folded into their consumers) and horizontal
//!    (concurrent same-shape operators sharing an operand, e.g. the four
//!    LSTM gate projections) fusion within static blocks.
//! 5. **Operator hoisting** ([`depth`], §B.1) — operators not part of the
//!    sequential dependency of a recursion get a static depth of zero,
//!    which at runtime hoists them out of the recursion.
//! 6. **Program phases** ([`phases`], §4.1, §B.3) — semantic stages of
//!    `@main`, inferred heuristically with a manual `phase;` override.
//! 7. **Ghost operators** ([`ghost`], §4.1, Fig. 4) — depth padding for the
//!    shorter branch of conditionals so that eager depth-based batching does
//!    not split batches.
//! 8. **Static frequency estimation** ([`freq`], §D.1) — per-operator
//!    execution-count estimates from recursion nesting depth, the
//!    auto-scheduler's prioritization fallback when PGO is unavailable.

#![deny(missing_docs)]

pub mod absval;
pub mod blocks;
pub mod depth;
pub mod dup;
pub mod freq;
pub mod fusion;
pub mod ghost;
pub mod phases;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use acrobat_ir::{ExprId, Module};
use serde::{Deserialize, Serialize};

/// Which optimizations the static pipeline applies.
///
/// Each flag maps to one bar of the paper's Fig. 5 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisOptions {
    /// Vertical kernel fusion ("standard kernel fusion" in Fig. 5).
    pub fusion: bool,
    /// Horizontal fusion of concurrent operators sharing inputs (§C.1).
    pub horizontal_fusion: bool,
    /// Grain-size coarsening: schedule whole static blocks (§B.2).
    pub coarsen: bool,
    /// Ghost-operator insertion at conditionals (§B.3).
    pub ghost_ops: bool,
    /// Program-phase inference (§4.1).
    pub phases: bool,
    /// Code duplication for data reuse (§C.1).
    pub duplication: bool,
    /// Operator hoisting out of recursions (§B.1).
    pub hoisting: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            fusion: true,
            horizontal_fusion: true,
            coarsen: true,
            ghost_ops: true,
            phases: true,
            duplication: true,
            hoisting: true,
        }
    }
}

impl AnalysisOptions {
    /// Everything off — the "no optimizations" baseline of Fig. 5.
    pub fn none() -> Self {
        AnalysisOptions {
            fusion: false,
            horizontal_fusion: false,
            coarsen: false,
            ghost_ops: false,
            phases: false,
            duplication: false,
            hoisting: false,
        }
    }
}

/// Classification of one operator-call argument (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArgClass {
    /// The same tensor for every instance in the batch; the generated
    /// batched kernel loads it once and reuses it.
    Shared,
    /// A distinct tensor per instance; the batched kernel indexes it by the
    /// instance lane.
    Batched,
}

impl fmt::Display for ArgClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArgClass::Shared => "shared",
            ArgClass::Batched => "batched",
        })
    }
}

/// The complete output of the static pipeline.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// The analyzed module (after code duplication; re-type-checked).
    pub module: Module,
    /// Per operator call site: the class of each argument.
    pub arg_classes: BTreeMap<ExprId, Vec<ArgClass>>,
    /// Operator call sites whose depth is statically zero (hoistable out of
    /// the enclosing recursion).
    pub hoisted: BTreeSet<ExprId>,
    /// `let` statements in `@main` after which the program-phase counter
    /// increments.
    pub phase_boundaries: BTreeSet<ExprId>,
    /// Ghost-operator insertions: conditional branch expression → number of
    /// depth bumps to pad.
    pub ghosts: BTreeMap<ExprId, usize>,
    /// Static blocks per function, with their fusion groups.
    pub blocks: blocks::BlockMap,
    /// For each operator call site, its position descriptor (block, group,
    /// whether it closes its group / block).
    pub site_info: BTreeMap<ExprId, SiteInfo>,
    /// The options the pipeline ran with.
    pub options: AnalysisOptions,
}

/// Where an operator call site sits in the block/group structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteInfo {
    /// Enclosing static block.
    pub block: blocks::BlockId,
    /// Fusion group within the block.
    pub group: fusion::GroupId,
    /// True if this is the final site of its group (the group's kernel is
    /// launched when this site executes).
    pub closes_group: bool,
    /// True if this is the final site of its block (the scheduling unit is
    /// complete when this site executes).
    pub closes_block: bool,
}

/// Runs the full static pipeline.
///
/// `module` must already be type checked ([`acrobat_ir::typeck::check_module`]).
///
/// # Errors
///
/// Returns [`acrobat_ir::IrError`] if re-type-checking after code
/// duplication fails (which would indicate an internal inconsistency) or if
/// the module lacks `@main`.
pub fn analyze(
    module: Module,
    options: AnalysisOptions,
) -> Result<AnalysisResult, acrobat_ir::IrError> {
    if !module.functions.contains_key("main") {
        return Err(acrobat_ir::IrError::NoMain);
    }

    // 1+2. Taint analysis interleaved with duplication rounds; nested
    // conflicts (a duplicated function that itself calls a now-conflicting
    // callee) are resolved by successive rounds.
    let mut module = module;
    let mut taint = absval::analyze_reuse(&module);
    if options.duplication {
        for _ in 0..4 {
            if taint.conflicts.is_empty() {
                break;
            }
            module = dup::duplicate_for_reuse(module, &taint)?;
            taint = absval::analyze_reuse(&module);
        }
    }
    let arg_classes = taint.arg_classes.clone();

    // 5 (first): hoisting — computed before fusion so that fusion does not
    // merge hoistable operators (statically-depth-zero) with
    // recursion-carried ones, which would forfeit the hoist (the paper's
    // Listing 2 keeps `bias_dense` and `sigmoid_add_dense` as separate
    // fused kernels for exactly this reason).
    let hoisted = if options.hoisting { depth::hoistable_sites(&module) } else { BTreeSet::new() };

    // 3+4. Static blocks and fusion groups.
    let block_map = blocks::find_blocks(&module);
    let block_map = fusion::plan_fusion(&module, block_map, options, &hoisted);
    let site_info = blocks::site_info(&block_map);

    // 6. Phases.
    let phase_boundaries =
        if options.phases { phases::phase_boundaries(&module) } else { BTreeSet::new() };

    // 7. Ghost operators.
    let ghosts = if options.ghost_ops {
        ghost::ghost_insertions(&module, &block_map)
    } else {
        BTreeMap::new()
    };

    Ok(AnalysisResult {
        module,
        arg_classes,
        hoisted,
        phase_boundaries,
        ghosts,
        blocks: block_map,
        site_info,
        options,
    })
}
