//! Kernel fusion planning (§4, §C.1 of the paper).
//!
//! Two fusion styles, both confined to a static block:
//!
//! * **Vertical fusion** — a producer whose result is consumed exactly once,
//!   by a later operator in the same block, folds into its consumer's
//!   kernel.  At most one "heavy" operator (matmul, reductions, softmax,
//!   layer norm) per fused group; elementwise and memory operators
//!   (the paper's reshape/concat/transpose force-fusion case, §D.3) fold
//!   freely.  This is what "standard kernel fusion" toggles in Fig. 5.
//! * **Horizontal fusion** — independent groups with identical operator
//!   structure that load a common external operand merge into one kernel,
//!   exploiting the shared operand (the LSTM four-gate case, Fig. 8).
//!
//! The output is a partition of each block's sites into [`FusionGroup`]s;
//! `acrobat-codegen` compiles each group into a single batched kernel
//! program, and the runtime launches one kernel per group per batch.

use std::collections::BTreeSet;

use acrobat_ir::{ExprId, Module, Type};

use crate::blocks::{BlockMap, StaticBlock};
use crate::AnalysisOptions;

/// Identifier of a fusion group, unique within a module analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

/// How a group was formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKind {
    /// A single un-fused operator.
    Single,
    /// Vertically fused producer/consumer chain.
    Vertical,
    /// Horizontally merged concurrent operators.
    Horizontal,
}

/// A fusion group: operator sites executed as one kernel.
#[derive(Debug, Clone)]
pub struct FusionGroup {
    /// Group id.
    pub id: GroupId,
    /// Formation kind.
    pub kind: GroupKind,
    /// Member sites in execution order.
    pub sites: Vec<ExprId>,
}

/// Is this operator "heavy" (at most one allowed per fused kernel)?
fn is_heavy(op: &acrobat_tensor::PrimOp) -> bool {
    !(op.is_elementwise() || op.is_memory_op() || matches!(op, acrobat_tensor::PrimOp::Fill { .. }))
}

/// Plans fusion groups for every block.
///
/// With `options.fusion` off every site becomes its own [`GroupKind::Single`]
/// group (the Fig. 5 "no fusion" configuration).  Horizontal fusion runs
/// *first* (merging same-shape heavy operators that share an operand, as in
/// Fig. 8) and vertical fusion then folds elementwise and memory operators
/// into the resulting groups.
pub fn plan_fusion(
    module: &Module,
    mut map: BlockMap,
    options: AnalysisOptions,
    hoisted: &BTreeSet<ExprId>,
) -> BlockMap {
    let mut next_group = 0u32;
    for block in &mut map.blocks {
        let n = block.sites.len();
        let mut uf = UnionFind::new(n);
        let mut horizontal_roots: Vec<bool> = vec![false; n];
        if options.fusion {
            let hoist_flags: Vec<bool> =
                block.sites.iter().map(|s| hoisted.contains(&s.site)).collect();
            if options.horizontal_fusion {
                horizontal_pass(module, block, &mut uf, &mut horizontal_roots, &hoist_flags);
            }
            vertical_pass(module, block, &mut uf, &mut horizontal_roots, &hoist_flags);
            repair_pass(block, &mut uf, &mut horizontal_roots);
        }
        block.groups = uf
            .groups()
            .into_iter()
            .map(|members| {
                let id = GroupId(next_group);
                next_group += 1;
                let kind = if horizontal_roots[uf.find(members[0])] {
                    GroupKind::Horizontal
                } else if members.len() == 1 {
                    GroupKind::Single
                } else {
                    GroupKind::Vertical
                };
                FusionGroup {
                    id,
                    kind,
                    sites: members.iter().map(|&i| block.sites[i].site).collect(),
                }
            })
            .collect();
    }
    map
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }

    fn find(&self, mut i: usize) -> usize {
        while self.parent[i] != i {
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        // Keep the smaller index as root (stable execution ordering).
        let (root, child) = if ra <= rb { (ra, rb) } else { (rb, ra) };
        self.parent[child] = root;
        root
    }

    fn groups(&self) -> Vec<Vec<usize>> {
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..self.parent.len() {
            by_root.entry(self.find(i)).or_default().push(i);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

/// Kernels are materialized when their group's *last* site executes.  A
/// group is therefore only executable if no site outside it consumes one of
/// its results before that point.  The greedy passes can rarely violate this
/// (an interleaved group consuming a mid-group escaping output); such groups
/// are split back into singletons.
fn repair_pass(block: &StaticBlock, uf: &mut UnionFind, horizontal_roots: &mut [bool]) {
    let n = block.sites.len();
    loop {
        let mut bad_root: Option<usize> = None;
        'scan: for consumer in 0..n {
            for &producer in block.sites[consumer].arg_sources.iter().flatten() {
                let rp = uf.find(producer);
                if uf.find(consumer) == rp {
                    continue;
                }
                // Last site of the producer's group.
                let last = (0..n).filter(|&i| uf.find(i) == rp).max().expect("non-empty group");
                if consumer < last {
                    bad_root = Some(rp);
                    break 'scan;
                }
            }
        }
        match bad_root {
            None => return,
            Some(root) => {
                // Split the offending group into singletons (collect members
                // first: resetting parents invalidates find paths).
                let members: Vec<usize> = (0..n).filter(|&i| uf.find(i) == root).collect();
                for i in members {
                    uf.parent[i] = i;
                }
                horizontal_roots[root] = false;
            }
        }
    }
}

/// Transitive data-dependence: `reach[i]` = sites feeding site `i`.
fn reachability(block: &StaticBlock) -> Vec<std::collections::BTreeSet<usize>> {
    let n = block.sites.len();
    let mut reach: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
    for i in 0..n {
        for src in block.sites[i].arg_sources.iter().flatten() {
            let preds: Vec<usize> = reach[*src].iter().copied().collect();
            reach[i].insert(*src);
            reach[i].extend(preds);
        }
    }
    reach
}

/// Merges independent heavy operators with identical op+shapes that load a
/// common external variable (the LSTM gate projections of Fig. 8).
fn horizontal_pass(
    module: &Module,
    block: &StaticBlock,
    uf: &mut UnionFind,
    horizontal_roots: &mut [bool],
    hoist_flags: &[bool],
) {
    let n = block.sites.len();
    let reach = reachability(block);
    let sig = |i: usize| -> Option<String> {
        let site = block.sites[i].site;
        let op = &module.op_prims[&site];
        if !is_heavy(op) {
            return None;
        }
        let shape = match module.expr_types.get(&site) {
            Some(Type::Tensor(s)) => s.to_string(),
            _ => return None,
        };
        Some(format!("{op}|{shape}"))
    };
    let ext_vars = |i: usize| -> Vec<&String> {
        block.sites[i]
            .arg_sources
            .iter()
            .zip(&block.sites[i].arg_vars)
            .filter(|(src, _)| src.is_none())
            .filter_map(|(_, v)| v.as_ref())
            .collect()
    };
    for i in 0..n {
        let Some(si) = sig(i) else { continue };
        for j in (i + 1)..n {
            if uf.find(i) == uf.find(j) {
                continue;
            }
            if sig(j).as_deref() != Some(si.as_str()) {
                continue;
            }
            if reach[j].contains(&i) || reach[i].contains(&j) {
                continue;
            }
            if hoist_flags[i] != hoist_flags[j] {
                continue; // never mix hoistable and recursion-carried work
            }
            let vi = ext_vars(i);
            if !ext_vars(j).iter().any(|v| vi.contains(v)) {
                continue;
            }
            let root = uf.union(i, j);
            horizontal_roots[root] = true;
        }
    }
}

/// Folds single-use producers into their consumers, subject to the one-heavy
/// rule; horizontal groups count as a single heavy unit and accept
/// elementwise epilogues.
fn vertical_pass(
    module: &Module,
    block: &StaticBlock,
    uf: &mut UnionFind,
    horizontal_roots: &mut [bool],
    hoist_flags: &[bool],
) {
    let n = block.sites.len();
    let heavy: Vec<bool> =
        block.sites.iter().map(|s| is_heavy(&module.op_prims[&s.site])).collect();
    // Heavy budget per current root (a horizontal bundle counts as one).
    let mut budget: Vec<usize> = vec![0; n];
    for (i, &is_heavy_site) in heavy.iter().enumerate() {
        let r = uf.find(i);
        if horizontal_roots[r] {
            budget[r] = 1;
        } else if is_heavy_site {
            budget[r] += 1;
        }
    }
    for i in 0..n {
        for src in block.sites[i].arg_sources.clone().iter().flatten() {
            let p = *src;
            if block.sites[p].internal_uses != 1 || block.sites[p].escapes {
                continue;
            }
            let (ri, rp) = (uf.find(i), uf.find(p));
            if ri == rp {
                continue;
            }
            // A statically-hoisted producer must stay in its own kernel: a
            // group mixing hoisted and carried sites could not be assigned a
            // static depth (§B.1).
            if hoist_flags[i] != hoist_flags[p] {
                continue;
            }
            let combined = budget[ri] + budget[rp];
            let either_horizontal = horizontal_roots[ri] || horizontal_roots[rp];
            // One heavy unit per group; a horizontal bundle additionally
            // accepts heavy-free epilogues/prologues.
            let ok = combined <= 1 || (either_horizontal && (budget[ri] == 0 || budget[rp] == 0));
            if !ok {
                continue;
            }
            let was_horizontal = either_horizontal;
            let root = uf.union(ri, rp);
            budget[root] = combined;
            if was_horizontal {
                horizontal_roots[root] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::find_blocks;
    use acrobat_ir::{parse_module, typeck};

    fn plan(src: &str, opts: AnalysisOptions) -> BlockMap {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let b = find_blocks(&m);
        plan_fusion(&m, b, opts, &BTreeSet::new())
    }

    const CHAIN: &str =
        "def @main($w: Tensor[(2, 2)], $b: Tensor[(1, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
        sigmoid(add($b, matmul(%x, $w)))
    }";

    #[test]
    fn epilogue_fuses_into_matmul() {
        let map = plan(CHAIN, AnalysisOptions::default());
        let block = &map.blocks[0];
        assert_eq!(block.groups.len(), 1, "matmul+add+sigmoid is one kernel");
        assert_eq!(block.groups[0].sites.len(), 3);
        assert_eq!(block.groups[0].kind, GroupKind::Vertical);
    }

    #[test]
    fn fusion_off_one_group_per_site() {
        let map = plan(CHAIN, AnalysisOptions::none());
        let block = &map.blocks[0];
        assert_eq!(block.groups.len(), 3);
        assert!(block.groups.iter().all(|g| g.kind == GroupKind::Single));
    }

    #[test]
    fn two_matmuls_do_not_fuse_vertically() {
        let src = "def @main($w1: Tensor[(2, 2)], $w2: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            matmul(matmul(%x, $w1), $w2)
        }";
        let map = plan(src, AnalysisOptions::default());
        assert_eq!(map.blocks[0].groups.len(), 2, "two heavy ops stay separate");
    }

    #[test]
    fn escaping_producer_not_fused() {
        let src = "def @main(%x: Tensor[(1, 2)]) -> (Tensor[(1, 2)], Tensor[(1, 2)]) {
            let %a = relu(%x);
            (%a, tanh(%a))
        }";
        let map = plan(src, AnalysisOptions::default());
        // relu escapes (returned), so tanh cannot swallow it.
        assert_eq!(map.blocks[0].groups.len(), 2);
    }

    #[test]
    fn lstm_gates_fuse_horizontally() {
        // Four gate projections of the same input — the Fig. 8 case.
        let src = "def @main($wi: Tensor[(2, 2)], $wf: Tensor[(2, 2)], $wo: Tensor[(2, 2)], $wc: Tensor[(2, 2)],
                              %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            let %i = sigmoid(matmul(%x, $wi));
            let %f = sigmoid(matmul(%x, $wf));
            let %o = sigmoid(matmul(%x, $wo));
            let %c = tanh(matmul(%x, $wc));
            mul(mul(%i, %f), mul(%o, %c))
        }";
        let map = plan(src, AnalysisOptions::default());
        let block = &map.blocks[0];
        let horizontal: Vec<_> =
            block.groups.iter().filter(|g| g.kind == GroupKind::Horizontal).collect();
        assert_eq!(horizontal.len(), 1, "groups: {:?}", block.groups);
        // All four gate projections share one kernel (they load the same %x
        // and the same-shape weights).
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let _ = m;
        assert!(horizontal[0].sites.len() >= 4, "groups: {:?}", block.groups);
    }

    #[test]
    fn horizontal_off_keeps_lanes_separate() {
        let src = "def @main($wi: Tensor[(2, 2)], $wf: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            add(sigmoid(matmul(%x, $wi)), sigmoid(matmul(%x, $wf)))
        }";
        let mut opts = AnalysisOptions { horizontal_fusion: false, ..Default::default() };
        let map = plan(src, opts);
        // add cannot fuse into either matmul group (it consumes both, each
        // single-use… it can fuse into ONE of them). Expect 2 groups.
        assert!(map.blocks[0].groups.len() >= 2);
        opts.horizontal_fusion = true;
        let map2 = plan(src, opts);
        assert!(
            map2.blocks[0].groups.len() < map.blocks[0].groups.len()
                || map2.blocks[0].groups.iter().any(|g| g.kind == GroupKind::Horizontal),
            "horizontal fusion reduces kernel count"
        );
    }

    #[test]
    fn memory_ops_fuse_into_consumer() {
        let src = "def @main(%a: Tensor[(1, 2)], %b: Tensor[(1, 2)]) -> Tensor[(1, 4)] {
            relu(concat[axis=1](%a, %b))
        }";
        let map = plan(src, AnalysisOptions::default());
        assert_eq!(map.blocks[0].groups.len(), 1, "concat folds into relu");
    }

    #[test]
    fn site_info_marks_closers() {
        let m = typeck::check_module(parse_module(CHAIN).unwrap()).unwrap();
        let map = plan_fusion(&m, find_blocks(&m), AnalysisOptions::default(), &BTreeSet::new());
        let info = crate::blocks::site_info(&map);
        let block = &map.blocks[0];
        let last = block.sites.last().unwrap().site;
        assert!(info[&last].closes_block);
        assert!(info[&last].closes_group);
        let first = block.sites.first().unwrap().site;
        assert!(!info[&first].closes_block);
    }
}
