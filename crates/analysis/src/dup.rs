//! Code duplication for data reuse (§C.1 of the paper).
//!
//! When the reuse analysis finds a function reached under two or more
//! distinct invariant-binding signatures (the BiRNN example: one `@rnn`
//! called with forward weights and again with backward weights), no single
//! batched kernel for the operators inside can treat the weights as shared.
//! Simply inlining does not work for recursive functions, so — exactly as
//! the paper describes — we *transitively duplicate* the function, giving
//! each calling context its own copy (and therefore its own operator call
//! sites, each with a unique shared binding).
//!
//! Duplication proceeds in rounds from the outside in: each round clones the
//! currently-conflicting functions and retargets unambiguous call sites;
//! nested conflicts are exposed and resolved by the next round's re-analysis
//! (driven by [`crate::analyze`]).

use std::collections::BTreeMap;

use acrobat_ir::{Callee, Expr, ExprKind, FnDef, Module};

use crate::absval::ReuseAnalysis;

/// Applies one round of duplication, then re-type-checks the module.
///
/// # Errors
///
/// Propagates type errors from re-checking (these indicate an internal bug —
/// duplication is type-preserving).
pub fn duplicate_for_reuse(
    mut module: Module,
    analysis: &ReuseAnalysis,
) -> Result<Module, acrobat_ir::IrError> {
    // Assign clone names per (func, signature).
    let mut clone_names: BTreeMap<(String, String), String> = BTreeMap::new();
    for (func, sigs) in &analysis.conflicts {
        for (i, sig) in sigs.iter().enumerate() {
            clone_names.insert((func.clone(), sig.clone()), format!("{func}__c{i}"));
        }
    }

    // Retarget call sites inside non-conflicting functions.  (Call sites
    // inside conflicting functions are cloned verbatim; their targets are
    // resolved in a later round once the clone has a unique context.)
    let conflicting: Vec<String> = analysis.conflicts.keys().cloned().collect();
    let fn_names: Vec<String> = module.functions.keys().cloned().collect();
    for name in &fn_names {
        if conflicting.contains(name) {
            continue;
        }
        let mut f = module.functions.remove(name).expect("function exists");
        retarget_calls(&mut f.body, &|id, callee| {
            if let Some((target, sig)) = analysis.call_signatures.get(&id) {
                if target == callee {
                    return clone_names.get(&(target.clone(), sig.clone())).cloned();
                }
            }
            None
        });
        module.functions.insert(name.clone(), f);
    }

    // Create the clones: deep copies with fresh expression ids and
    // self-recursive calls retargeted to the clone itself.
    let mut new_fns: Vec<FnDef> = Vec::new();
    for ((func, _sig), clone_name) in &clone_names {
        let original = module.functions[func].clone();
        let mut body = original.body.clone();
        refresh_ids(&mut body, &mut module);
        retarget_calls(&mut body, &|_, callee| (callee == func).then(|| clone_name.clone()));
        new_fns.push(FnDef {
            name: clone_name.clone(),
            params: original.params.clone(),
            ret: original.ret.clone(),
            body,
        });
    }
    for f in new_fns {
        module.functions.insert(f.name.clone(), f);
    }

    // Drop originals that are no longer referenced.
    for func in &conflicting {
        let referenced = module.functions.values().any(|f| {
            let mut hit = false;
            acrobat_ir::ast::visit_exprs(&f.body, &mut |e| {
                if let ExprKind::Call { callee: Callee::Global(n), .. } = &e.kind {
                    if n == func && f.name != *func {
                        hit = true;
                    }
                }
            });
            hit
        });
        if !referenced {
            module.functions.remove(func);
        }
    }

    // Re-elaborate types and op resolutions for the new bodies.
    module.expr_types.clear();
    module.op_prims.clear();
    acrobat_ir::typeck::check_module(module)
}

/// Rewrites global call targets throughout an expression tree.
fn retarget_calls(expr: &mut Expr, rename: &dyn Fn(acrobat_ir::ExprId, &str) -> Option<String>) {
    if let ExprKind::Call { callee: Callee::Global(name), .. } = &mut expr.kind {
        if let Some(new_name) = rename(expr.id, name) {
            *name = new_name;
        }
    }
    for_each_child_mut(expr, &mut |c| retarget_calls(c, rename));
}

/// Assigns fresh ids to every node of a cloned expression tree.
fn refresh_ids(expr: &mut Expr, module: &mut Module) {
    expr.id = module.fresh_id();
    for_each_child_mut(expr, &mut |c| refresh_ids(c, module));
}

fn for_each_child_mut(expr: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match &mut expr.kind {
        ExprKind::Var(_)
        | ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::RandRange { .. }
        | ExprKind::PhaseBoundary => {}
        ExprKind::Let { value, body, .. } => {
            f(value);
            f(body);
        }
        ExprKind::If { cond, then, els } => {
            f(cond);
            f(then);
            f(els);
        }
        ExprKind::Match { scrutinee, arms } => {
            f(scrutinee);
            for arm in arms {
                f(&mut arm.body);
            }
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                f(a);
            }
        }
        ExprKind::Tuple(es) | ExprKind::Parallel(es) => {
            for e in es {
                f(e);
            }
        }
        ExprKind::Proj { tuple, .. } => f(tuple),
        ExprKind::Lambda { body, .. } => f(body),
        ExprKind::Map { func, list } => {
            f(func);
            f(list);
        }
        ExprKind::ScalarBin { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::ScalarUn { operand, .. } => f(operand),
        ExprKind::Sync { tensor, .. } => f(tensor),
    }
}

#[cfg(test)]
mod tests {
    use crate::absval::analyze_reuse;
    use crate::ArgClass;
    use acrobat_ir::{parse_module, typeck, Callee, ExprKind};

    const BIRNN_LIKE: &str = r#"
        def @step(%x: Tensor[(1, 2)], $w: Tensor[(2, 2)]) -> Tensor[(1, 2)] {
            tanh(matmul(%x, $w))
        }
        def @main($wf: Tensor[(2, 2)], $wb: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            let %f = @step(%x, $wf);
            let %b = @step(%x, $wb);
            add(%f, %b)
        }
    "#;

    #[test]
    fn duplication_splits_conflicting_function() {
        let m = typeck::check_module(parse_module(BIRNN_LIKE).unwrap()).unwrap();
        let r = analyze_reuse(&m);
        assert!(!r.conflicts.is_empty());
        let m2 = super::duplicate_for_reuse(m, &r).unwrap();
        // @step is gone, replaced by two clones.
        assert!(!m2.functions.contains_key("step"));
        assert!(m2.functions.contains_key("step__c0"));
        assert!(m2.functions.contains_key("step__c1"));
        // After duplication, re-analysis sees no conflicts and both matmul
        // sites have shared weights.
        let r2 = analyze_reuse(&m2);
        assert!(r2.conflicts.is_empty(), "{:?}", r2.conflicts);
        let mut shared_weights = 0;
        for f in m2.functions.values() {
            acrobat_ir::ast::visit_exprs(&f.body, &mut |e| {
                if let ExprKind::Call { callee: Callee::Op { name, .. }, .. } = &e.kind {
                    if name == "matmul" && r2.arg_classes[&e.id][1] == ArgClass::Shared {
                        shared_weights += 1;
                    }
                }
            });
        }
        assert_eq!(shared_weights, 2);
    }

    #[test]
    fn recursive_function_duplicates_with_self_calls() {
        let src = r#"
            def @rnn(%xs: List[Tensor[(1, 2)]], %h: Tensor[(1, 2)], $w: Tensor[(2, 2)]) -> Tensor[(1, 2)] {
                match %xs {
                    Nil => %h,
                    Cons(%x, %t) => @rnn(%t, tanh(matmul(add(%x, %h), $w)), $w)
                }
            }
            def @main($wf: Tensor[(2, 2)], $wb: Tensor[(2, 2)], $h0: Tensor[(1, 2)],
                      %xs: List[Tensor[(1, 2)]]) -> Tensor[(1, 2)] {
                let %f = @rnn(%xs, $h0, $wf);
                let %b = @rnn(%xs, $h0, $wb);
                add(%f, %b)
            }
        "#;
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let r = analyze_reuse(&m);
        assert!(r.conflicts.contains_key("rnn"));
        let m2 = super::duplicate_for_reuse(m, &r).unwrap();
        // Each clone's recursive call targets itself.
        for clone in ["rnn__c0", "rnn__c1"] {
            let f = &m2.functions[clone];
            let mut self_calls = 0;
            acrobat_ir::ast::visit_exprs(&f.body, &mut |e| {
                if let ExprKind::Call { callee: Callee::Global(n), .. } = &e.kind {
                    assert_eq!(n, clone, "recursive call must stay inside the clone");
                    self_calls += 1;
                }
            });
            assert_eq!(self_calls, 1);
        }
        let r2 = analyze_reuse(&m2);
        assert!(r2.conflicts.is_empty());
    }

    #[test]
    fn no_conflict_no_change() {
        let src = "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] { matmul(%x, $w) }";
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let r = analyze_reuse(&m);
        assert!(r.conflicts.is_empty());
    }

    #[test]
    fn cloned_ids_are_fresh() {
        let m = typeck::check_module(parse_module(BIRNN_LIKE).unwrap()).unwrap();
        let r = analyze_reuse(&m);
        let m2 = super::duplicate_for_reuse(m, &r).unwrap();
        let mut ids = std::collections::HashSet::new();
        for f in m2.functions.values() {
            acrobat_ir::ast::visit_exprs(&f.body, &mut |e| {
                assert!(ids.insert(e.id), "duplicate expr id {:?}", e.id);
            });
        }
    }
}
