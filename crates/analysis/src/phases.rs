//! Program-phase inference (§4.1, §B.3 of the paper).
//!
//! Depth-based scheduling alone batches the per-token output operators of an
//! RNN poorly: every instance reaches the output stage at a different depth
//! because sentence lengths differ.  The fix is *program phases*: the
//! scheduler drains all work of phase *k* before executing anything of phase
//! *k + 1*, so the output transformations of all instances batch together
//! regardless of how deep the recursive stage ran.
//!
//! The paper's heuristic — "considering individual semantic stages of the
//! input DL computation as individual phases" — is implemented here as:
//! every top-level statement of `@main` that performs *repetitive* work (a
//! call to a recursive function, or a `map`) ends a phase, provided later
//! statements still perform tensor work.  Users can override with explicit
//! `phase;` markers, which always insert a boundary.

use std::collections::BTreeSet;

use acrobat_ir::{Callee, Expr, ExprId, ExprKind, Module};

/// Returns the `let` expressions in `@main` after whose bound value the
/// phase counter increments.
pub fn phase_boundaries(module: &Module) -> BTreeSet<ExprId> {
    let Some(main) = module.functions.get("main") else {
        return BTreeSet::new();
    };
    // Collect the top-level statement chain of @main.
    let mut stmts: Vec<(ExprId, &Expr)> = Vec::new(); // (let id, value expr)
    let mut cursor = &main.body;
    while let ExprKind::Let { value, body, .. } = &cursor.kind {
        stmts.push((cursor.id, value));
        cursor = body;
    }
    // The final expression is the last "statement".
    let tail = cursor;

    let recursive: BTreeSet<&str> = module
        .functions
        .iter()
        .filter(|(name, f)| calls_function(&f.body, name))
        .map(|(name, _)| name.as_str())
        .collect();

    let is_repetitive = |e: &Expr| -> bool {
        let mut rep = false;
        acrobat_ir::ast::visit_exprs(e, &mut |x| match &x.kind {
            ExprKind::Map { .. } => rep = true,
            ExprKind::Call { callee: Callee::Global(n), .. } if recursive.contains(n.as_str()) => {
                rep = true
            }
            _ => {}
        });
        rep
    };
    let has_tensor_work = |e: &Expr| -> bool {
        let mut work = false;
        acrobat_ir::ast::visit_exprs(e, &mut |x| {
            if matches!(
                &x.kind,
                ExprKind::Call { .. } | ExprKind::Map { .. } | ExprKind::Sync { .. }
            ) {
                work = true;
            }
        });
        work
    };

    let mut boundaries = BTreeSet::new();
    for (i, (let_id, value)) in stmts.iter().enumerate() {
        // Manual override.
        if matches!(value.kind, ExprKind::PhaseBoundary) {
            boundaries.insert(*let_id);
            continue;
        }
        let later_work =
            stmts[i + 1..].iter().any(|(_, v)| has_tensor_work(v)) || has_tensor_work(tail);
        if is_repetitive(value) && later_work {
            boundaries.insert(*let_id);
        }
    }
    boundaries
}

fn calls_function(body: &Expr, name: &str) -> bool {
    let mut found = false;
    acrobat_ir::ast::visit_exprs(body, &mut |e| {
        if let ExprKind::Call { callee: Callee::Global(n), .. } = &e.kind {
            if n == name {
                found = true;
            }
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_ir::{parse_module, typeck};

    fn boundaries(src: &str) -> usize {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        phase_boundaries(&m).len()
    }

    const RNN_WITH_OUTPUT: &str = r#"
        def @rnn(%xs: List[Tensor[(1, 4)]], %h: Tensor[(1, 4)], $w: Tensor[(4, 4)]) -> List[Tensor[(1, 4)]] {
            match %xs {
                Nil => Nil,
                Cons(%x, %t) => {
                    let %nh = tanh(matmul(add(%x, %h), $w));
                    Cons(%nh, @rnn(%t, %nh, $w))
                }
            }
        }
        def @main($w: Tensor[(4, 4)], $cw: Tensor[(4, 2)], $h0: Tensor[(1, 4)],
                  %xs: List[Tensor[(1, 4)]]) -> List[Tensor[(1, 2)]] {
            let %states = @rnn(%xs, $h0, $w);
            map(fn(%p) { relu(matmul(%p, $cw)) }, %states)
        }
    "#;

    #[test]
    fn recursive_stage_before_output_stage_is_a_boundary() {
        // The paper's RNN example: the recursive stage is phase 1, the
        // output transformations phase 2.
        assert_eq!(boundaries(RNN_WITH_OUTPUT), 1);
    }

    #[test]
    fn single_stage_no_boundary() {
        let src = r#"
            def @main($w: Tensor[(4, 4)], %x: Tensor[(1, 4)]) -> Tensor[(1, 4)] {
                let %a = matmul(%x, $w);
                relu(%a)
            }
        "#;
        assert_eq!(boundaries(src), 0);
    }

    #[test]
    fn trailing_repetitive_stage_no_boundary() {
        // A repetitive stage with nothing after it needs no boundary.
        let src = r#"
            def @main($w: Tensor[(4, 4)], %xs: List[Tensor[(1, 4)]]) -> List[Tensor[(1, 4)]] {
                map(fn(%p) { relu(matmul(%p, $w)) }, %xs)
            }
        "#;
        assert_eq!(boundaries(src), 0);
    }

    #[test]
    fn manual_marker_always_counts() {
        let src = r#"
            def @main($w: Tensor[(4, 4)], %x: Tensor[(1, 4)]) -> Tensor[(1, 4)] {
                let %a = matmul(%x, $w);
                phase;
                relu(%a)
            }
        "#;
        assert_eq!(boundaries(src), 1);
    }

    #[test]
    fn two_recursive_stages_two_boundaries() {
        let src = r#"
            def @rnn(%xs: List[Tensor[(1, 4)]], %h: Tensor[(1, 4)], $w: Tensor[(4, 4)]) -> Tensor[(1, 4)] {
                match %xs {
                    Nil => %h,
                    Cons(%x, %t) => @rnn(%t, tanh(matmul(add(%x, %h), $w)), $w)
                }
            }
            def @main($w1: Tensor[(4, 4)], $w2: Tensor[(4, 4)], $h0: Tensor[(1, 4)],
                      %xs: List[Tensor[(1, 4)]]) -> Tensor[(1, 4)] {
                let %a = @rnn(%xs, $h0, $w1);
                let %b = @rnn(%xs, %a, $w2);
                relu(%b)
            }
        "#;
        assert_eq!(boundaries(src), 2);
    }
}
