//! Operator hoisting out of recursions (§B.1 of the paper).
//!
//! Inside a recursive function, an operator whose inputs do not depend on
//! values carried across recursive calls is not part of the recursion's
//! sequential dependency.  Assigning it a *statically computed* depth (zero,
//! or its position in the hoisted chain) lets the runtime batch all of its
//! invocations across every recursion step and every instance in one go —
//! the paper's RNN example hoists the input linear transformation
//! (`bias_dense` at depth 0 in Listing 2), turning N sequential matmuls into
//! one batched matmul over all tokens.
//!
//! The analysis computes, per self-recursive function:
//!
//! 1. the set of *carried* formals — parameters that receive, at some
//!    recursive call site, a value derived from an operator executed in the
//!    body (e.g. the RNN hidden state).  Structural descent (passing the
//!    tail of a matched list) does **not** make a formal carried;
//! 2. the operator sites whose transitive inputs avoid all carried formals
//!    and that do not sit under a conditional — these are hoistable.
//!
//! Functions containing tensor-dependent control flow (`item`/`sample`)
//! disable hoisting conservatively: execution of later iterations is not
//! statically known to happen.

use std::collections::{BTreeSet, HashMap};

use acrobat_ir::{Arm, Callee, Expr, ExprId, ExprKind, Module, Pattern};

/// Dependence level of a value inside a recursive body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Dep {
    /// Derived only from original inputs / parameters / structure.
    Clean,
    /// Derived from operator results of the current iteration (clean
    /// inputs).  Feeding this into a recursive call makes the target formal
    /// carried.
    CleanOp,
    /// Depends on a carried formal.
    Carried,
}

impl Dep {
    fn join(self, other: Dep) -> Dep {
        self.max(other)
    }
}

/// Finds all hoistable operator sites in the module.
pub fn hoistable_sites(module: &Module) -> BTreeSet<ExprId> {
    let op_free = op_free_formals(module);
    let mut out = BTreeSet::new();
    for (name, f) in &module.functions {
        if !is_self_recursive(name, &f.body) {
            continue;
        }
        if contains_sync(&f.body) {
            continue;
        }
        let mut carried = carried_formals(module, name);
        // A hoisted operator executes at a *static* depth, before any
        // dynamically-scheduled work — so its inputs must be available at
        // program start.  Formals that may receive operator results at some
        // call site (e.g. BiRNN's @zipcat consuming the RNN states) are
        // therefore treated like carried state.
        if let Some(flags) = op_free.get(name) {
            for (i, &free) in flags.iter().enumerate() {
                if !free {
                    carried.insert(i);
                }
            }
        }
        collect_hoistable(module, name, &carried, &mut out);
    }
    out
}

/// Interprocedural fixpoint: which formals of each function only ever
/// receive values derivable without executing any tensor operator (program
/// inputs, parameters, constants, and structure thereof)?
fn op_free_formals(module: &Module) -> HashMap<String, Vec<bool>> {
    let mut flags: HashMap<String, Vec<bool>> =
        module.functions.iter().map(|(n, f)| (n.clone(), vec![true; f.params.len()])).collect();
    loop {
        let mut changed = false;
        for (name, f) in &module.functions {
            let mut eval = OpFreeEval { module, flags: &flags, observations: Vec::new() };
            let mut env: HashMap<String, bool> = HashMap::new();
            for (i, p) in f.params.iter().enumerate() {
                // @main's inputs and weights are resident before execution.
                let free = name == "main" || flags[name][i];
                env.insert(p.name.clone(), free);
            }
            eval.eval(&f.body, &mut env);
            for (callee, position, free) in eval.observations {
                if !free {
                    if let Some(v) = flags.get_mut(&callee) {
                        if position < v.len() && v[position] {
                            v[position] = false;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            return flags;
        }
    }
}

struct OpFreeEval<'m> {
    module: &'m Module,
    flags: &'m HashMap<String, Vec<bool>>,
    /// (callee, arg position, value-is-op-free) per call site visit.
    observations: Vec<(String, usize, bool)>,
}

impl<'m> OpFreeEval<'m> {
    fn eval(&mut self, expr: &Expr, env: &mut HashMap<String, bool>) -> bool {
        match &expr.kind {
            ExprKind::Var(n) => env.get(n).copied().unwrap_or(false),
            ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::BoolLit(_)
            | ExprKind::RandRange { .. }
            | ExprKind::PhaseBoundary => true,
            ExprKind::Let { pat, value, body } => {
                let v = self.eval(value, env);
                match pat {
                    Pattern::Var(n) => {
                        env.insert(n.clone(), v);
                    }
                    Pattern::Wildcard => {}
                    Pattern::Tuple(ns) => {
                        for n in ns {
                            env.insert(n.clone(), v);
                        }
                    }
                }
                self.eval(body, env)
            }
            ExprKind::If { cond, then, els } => {
                let c = self.eval(cond, env);
                let t = self.eval(then, env);
                let e = self.eval(els, env);
                c && t && e
            }
            ExprKind::Match { scrutinee, arms } => {
                let s = self.eval(scrutinee, env);
                let mut r = true;
                for Arm { binders, body, .. } in arms {
                    for b in binders {
                        env.insert(b.clone(), s);
                    }
                    r &= self.eval(body, env);
                }
                r
            }
            ExprKind::Call { callee, args } => {
                let vals: Vec<bool> = args.iter().map(|a| self.eval(a, env)).collect();
                match callee {
                    Callee::Op { .. } => false,
                    Callee::Global(g) => {
                        for (i, v) in vals.iter().enumerate() {
                            self.observations.push((g.clone(), i, *v));
                        }
                        // A function's *result* is op-free only if its body
                        // performs no ops at all — approximate as false.
                        let _ = self.flags;
                        false
                    }
                    Callee::Ctor(_) => vals.into_iter().all(|v| v),
                    Callee::Var(_) => false,
                }
            }
            ExprKind::Tuple(es) | ExprKind::Parallel(es) => {
                es.iter().map(|e| self.eval(e, env)).collect::<Vec<_>>().into_iter().all(|b| b)
            }
            ExprKind::Proj { tuple, .. } => self.eval(tuple, env),
            ExprKind::Lambda { body, .. } => {
                let _ = self.module;
                self.eval(body, env)
            }
            ExprKind::Map { func, list } => {
                let l = self.eval(list, env);
                if let ExprKind::Lambda { params, body } = &func.kind {
                    for p in params {
                        env.insert(p.name.clone(), l);
                    }
                    let _ = self.eval(body, env);
                }
                false
            }
            ExprKind::ScalarBin { lhs, rhs, .. } => {
                let a = self.eval(lhs, env);
                let b = self.eval(rhs, env);
                a && b
            }
            ExprKind::ScalarUn { operand, .. } => self.eval(operand, env),
            ExprKind::Sync { tensor, .. } => {
                let _ = self.eval(tensor, env);
                false
            }
        }
    }
}

fn is_self_recursive(name: &str, body: &Expr) -> bool {
    let mut found = false;
    acrobat_ir::ast::visit_exprs(body, &mut |e| {
        if let ExprKind::Call { callee: Callee::Global(n), .. } = &e.kind {
            if n == name {
                found = true;
            }
        }
    });
    found
}

fn contains_sync(body: &Expr) -> bool {
    let mut found = false;
    acrobat_ir::ast::visit_exprs(body, &mut |e| {
        if matches!(e.kind, ExprKind::Sync { .. }) {
            found = true;
        }
    });
    found
}

/// Fixpoint computation of the carried-formal set for `name`.
fn carried_formals(module: &Module, name: &str) -> BTreeSet<usize> {
    let f = &module.functions[name];
    let mut carried: BTreeSet<usize> = BTreeSet::new();
    loop {
        let mut eval = DepEval {
            func: name,
            env: HashMap::new(),
            self_call_actuals: Vec::new(),
            hoistable: None,
            module,
            in_conditional: 0,
        };
        for (i, p) in f.params.iter().enumerate() {
            let d = if carried.contains(&i) { Dep::Carried } else { Dep::Clean };
            eval.env.insert(p.name.clone(), d);
        }
        eval.eval(&f.body);
        let mut next = carried.clone();
        for actuals in &eval.self_call_actuals {
            for (i, d) in actuals.iter().enumerate() {
                if *d >= Dep::CleanOp {
                    next.insert(i);
                }
            }
        }
        if next == carried {
            return carried;
        }
        carried = next;
    }
}

/// Second pass: with the carried set fixed, collect hoistable sites.
fn collect_hoistable(
    module: &Module,
    name: &str,
    carried: &BTreeSet<usize>,
    out: &mut BTreeSet<ExprId>,
) {
    let f = &module.functions[name];
    let mut eval = DepEval {
        func: name,
        env: HashMap::new(),
        self_call_actuals: Vec::new(),
        hoistable: Some(BTreeSet::new()),
        module,
        in_conditional: 0,
    };
    for (i, p) in f.params.iter().enumerate() {
        let d = if carried.contains(&i) { Dep::Carried } else { Dep::Clean };
        eval.env.insert(p.name.clone(), d);
    }
    eval.eval(&f.body);
    out.extend(eval.hoistable.expect("collection enabled"));
}

struct DepEval<'m> {
    func: &'m str,
    env: HashMap<String, Dep>,
    self_call_actuals: Vec<Vec<Dep>>,
    hoistable: Option<BTreeSet<ExprId>>,
    module: &'m Module,
    in_conditional: u32,
}

impl<'m> DepEval<'m> {
    fn eval(&mut self, expr: &Expr) -> Dep {
        match &expr.kind {
            ExprKind::Var(n) => self.env.get(n).copied().unwrap_or(Dep::Clean),
            ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::BoolLit(_)
            | ExprKind::RandRange { .. }
            | ExprKind::PhaseBoundary => Dep::Clean,
            ExprKind::Let { pat, value, body } => {
                let v = self.eval(value);
                match pat {
                    Pattern::Var(n) => {
                        self.env.insert(n.clone(), v);
                    }
                    Pattern::Wildcard => {}
                    Pattern::Tuple(ns) => {
                        for n in ns {
                            self.env.insert(n.clone(), v);
                        }
                    }
                }
                self.eval(body)
            }
            ExprKind::If { cond, then, els } => {
                let c = self.eval(cond);
                self.in_conditional += 1;
                let t = self.eval(then);
                let e = self.eval(els);
                self.in_conditional -= 1;
                c.join(t).join(e)
            }
            ExprKind::Match { scrutinee, arms } => {
                let s = self.eval(scrutinee);
                let mut r = Dep::Clean;
                for Arm { binders, body, .. } in arms {
                    for b in binders {
                        // Structural descent preserves the scrutinee's level.
                        self.env.insert(b.clone(), s);
                    }
                    r = r.join(self.eval(body));
                }
                r
            }
            ExprKind::Call { callee, args } => {
                let arg_deps: Vec<Dep> = args.iter().map(|a| self.eval(a)).collect();
                match callee {
                    Callee::Op { .. } => {
                        let input = arg_deps.iter().copied().fold(Dep::Clean, Dep::join);
                        if input < Dep::Carried {
                            if self.in_conditional == 0 {
                                if let Some(h) = &mut self.hoistable {
                                    h.insert(expr.id);
                                }
                            }
                            Dep::CleanOp
                        } else {
                            Dep::Carried
                        }
                    }
                    Callee::Global(n) if n == self.func => {
                        self.self_call_actuals.push(arg_deps);
                        Dep::Carried
                    }
                    _ => arg_deps.into_iter().fold(Dep::CleanOp, Dep::join),
                }
            }
            ExprKind::Tuple(es) | ExprKind::Parallel(es) => {
                es.iter().map(|e| self.eval(e)).fold(Dep::Clean, Dep::join)
            }
            ExprKind::Proj { tuple, .. } => self.eval(tuple),
            ExprKind::Lambda { body, .. } => {
                let _ = self.module;
                self.eval(body)
            }
            ExprKind::Map { func, list } => {
                let l = self.eval(list);
                if let ExprKind::Lambda { params, body } = &func.kind {
                    for p in params {
                        self.env.insert(p.name.clone(), l);
                    }
                    l.join(self.eval(body))
                } else {
                    l.join(self.eval(func))
                }
            }
            ExprKind::ScalarBin { lhs, rhs, .. } => self.eval(lhs).join(self.eval(rhs)),
            ExprKind::ScalarUn { operand, .. } => self.eval(operand),
            ExprKind::Sync { tensor, .. } => self.eval(tensor).join(Dep::Carried),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_ir::{parse_module, typeck, Callee, ExprKind};

    fn hoisted(src: &str) -> (Module, BTreeSet<ExprId>) {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let h = hoistable_sites(&m);
        (m, h)
    }

    fn site_named(m: &Module, func: &str, op: &str, nth: usize) -> ExprId {
        let mut found = Vec::new();
        acrobat_ir::ast::visit_exprs(&m.functions[func].body, &mut |e| {
            if let ExprKind::Call { callee: Callee::Op { name, .. }, .. } = &e.kind {
                if name == op {
                    found.push(e.id);
                }
            }
        });
        found[nth]
    }

    /// The paper's RNN (Listing 1 / Listing 2): the input linear transform
    /// hoists, the recurrent transform does not.
    const RNN: &str = r#"
        def @rnn(%inps: List[Tensor[(1, 4)]], %state: Tensor[(1, 4)],
                 $bias: Tensor[(1, 4)], $i_wt: Tensor[(4, 4)], $h_wt: Tensor[(4, 4)])
            -> List[Tensor[(1, 4)]] {
            match %inps {
                Nil => Nil,
                Cons(%inp, %tail) => {
                    let %inp_linear = add($bias, matmul(%inp, $i_wt));
                    let %new_state = sigmoid(add(%inp_linear, matmul(%state, $h_wt)));
                    Cons(%new_state, @rnn(%tail, %new_state, $bias, $i_wt, $h_wt))
                }
            }
        }
        def @main($bias: Tensor[(1, 4)], $i_wt: Tensor[(4, 4)], $h_wt: Tensor[(4, 4)],
                  $init: Tensor[(1, 4)], %inps: List[Tensor[(1, 4)]]) -> List[Tensor[(1, 4)]] {
            @rnn(%inps, $init, $bias, $i_wt, $h_wt)
        }
    "#;

    #[test]
    fn rnn_input_transform_hoists() {
        let (m, h) = hoisted(RNN);
        // matmul #0 = inp × i_wt (hoistable), add #0 = bias + … (hoistable).
        assert!(h.contains(&site_named(&m, "rnn", "matmul", 0)), "input matmul hoists");
        assert!(h.contains(&site_named(&m, "rnn", "add", 0)), "bias add hoists");
        // matmul #1 = state × h_wt (carried), sigmoid + add #1 depend on it.
        assert!(!h.contains(&site_named(&m, "rnn", "matmul", 1)));
        assert!(!h.contains(&site_named(&m, "rnn", "sigmoid", 0)));
        assert!(!h.contains(&site_named(&m, "rnn", "add", 1)));
    }

    #[test]
    fn non_recursive_function_not_considered() {
        let (_, h) = hoisted(
            "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] { matmul(%x, $w) }",
        );
        assert!(h.is_empty());
    }

    #[test]
    fn conditional_ops_not_hoisted() {
        let src = r#"
            def @f(%xs: List[Tensor[(1, 2)]], %n: Int) -> Int {
                match %xs {
                    Nil => %n,
                    Cons(%h, %t) => {
                        let %v = if %n > 3 { relu(%h) } else { %h };
                        @f(%t, %n + 1)
                    }
                }
            }
            def @main(%xs: List[Tensor[(1, 2)]]) -> Int { @f(%xs, 0) }
        "#;
        let (_, h) = hoisted(src);
        assert!(h.is_empty(), "op under a conditional must not hoist");
    }

    #[test]
    fn tensor_dependent_function_disables_hoisting() {
        let src = r#"
            def @f(%xs: List[Tensor[(1, 1)]], %acc: Tensor[(1, 1)]) -> Tensor[(1, 1)] {
                match %xs {
                    Nil => %acc,
                    Cons(%h, %t) => {
                        let %lin = relu(%h);
                        if sample(%acc) > 0.5 { @f(%t, %lin) } else { %acc }
                    }
                }
            }
            def @main(%xs: List[Tensor[(1, 1)]], %a: Tensor[(1, 1)]) -> Tensor[(1, 1)] { @f(%xs, %a) }
        "#;
        let (_, h) = hoisted(src);
        assert!(h.is_empty());
    }

    #[test]
    fn treelstm_like_leaf_transform_hoists() {
        let src = r#"
            type Tree[a] { Leaf(a), Node(Tree[a], Tree[a]) }
            def @enc(%t: Tree[Tensor[(1, 4)]], $w: Tensor[(4, 4)], $u: Tensor[(4, 4)]) -> Tensor[(1, 4)] {
                match %t {
                    Leaf(%e) => tanh(matmul(%e, $w)),
                    Node(%l, %r) => {
                        let (%a, %b) = parallel(@enc(%l, $w, $u), @enc(%r, $w, $u));
                        tanh(matmul(add(%a, %b), $u))
                    }
                }
            }
            def @main($w: Tensor[(4, 4)], $u: Tensor[(4, 4)], %t: Tree[Tensor[(1, 4)]]) -> Tensor[(1, 4)] {
                @enc(%t, $w, $u)
            }
        "#;
        let (m, h) = hoisted(src);
        // Leaf embedding transform hoists (depends only on input structure).
        assert!(h.contains(&site_named(&m, "enc", "matmul", 0)));
        assert!(h.contains(&site_named(&m, "enc", "tanh", 0)));
        // Internal-node combine consumes recursive results — not hoistable.
        assert!(!h.contains(&site_named(&m, "enc", "matmul", 1)));
        assert!(!h.contains(&site_named(&m, "enc", "add", 0)));
    }
}
