//! Parameter-reuse inference: a 1-context-sensitive interprocedural taint
//! analysis (§5.1 of the paper).
//!
//! The question the batched-kernel generator needs answered for every
//! argument of every tensor-operator call site is: *will all DFG nodes
//! batched for this site pass the same tensor here?*  If yes the argument is
//! [`ArgClass::Shared`] (loaded once by the batched kernel — model
//! parameters, constant tensors); otherwise it is [`ArgClass::Batched`].
//!
//! The analysis computes, for every expression, an abstract value:
//!
//! * [`AbsVal::Inv`] — *batch-invariant*, with a symbolic identity
//!   describing which value it is (a `$` model parameter, a constant
//!   operator such as `zeros`, or an operator applied to invariant inputs);
//! * [`AbsVal::Instance`] — (possibly) differs across mini-batch instances.
//!
//! Functions are analyzed per *context*: the vector of abstract arguments at
//! the call site (this subsumes the paper's 1-call-site sensitivity on our
//! two-level lattice, while remaining finite).  When the same operator call
//! site observes *different* invariant identities in different contexts —
//! the paper's BiRNN example, where `@rnn` is invoked with forward and then
//! backward weights — the site cannot have a single shared binding; the
//! conflict is recorded and resolved by code duplication ([`crate::dup`]).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use acrobat_ir::{Arm, Callee, Expr, ExprId, ExprKind, Module, Param, ParamKind, Pattern};

use crate::ArgClass;

/// Symbolic identity of a batch-invariant value.
///
/// Identities are canonical strings: `param:w`, `lit:1`, or
/// `op:<site>(<inputs>)`.  Two values share a kernel argument slot iff their
/// identities are equal.
pub type InvId = String;

/// Abstract value of an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsVal {
    /// Batch-invariant with the given identity.
    Inv(InvId),
    /// Differs (or may differ) across instances.
    Instance,
    /// Tuple of abstract values (kept precise for `parallel` results).
    Tuple(Vec<AbsVal>),
}

impl AbsVal {
    /// Least upper bound.  Distinct invariant identities join to
    /// [`AbsVal::Instance`]: a value that is one parameter on one control
    /// path and another parameter on a different path is not uniform across
    /// the batch.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Inv(a), AbsVal::Inv(b)) if a == b => AbsVal::Inv(a.clone()),
            (AbsVal::Tuple(xs), AbsVal::Tuple(ys)) if xs.len() == ys.len() => {
                AbsVal::Tuple(xs.iter().zip(ys).map(|(x, y)| x.join(y)).collect())
            }
            _ => AbsVal::Instance,
        }
    }

    /// Collapses tuples: the join of all leaves.
    fn flatten(&self) -> AbsVal {
        match self {
            AbsVal::Tuple(xs) => {
                let mut acc: Option<AbsVal> = None;
                for x in xs {
                    let fx = x.flatten();
                    acc = Some(match acc {
                        None => fx,
                        Some(a) => a.join(&fx),
                    });
                }
                acc.unwrap_or(AbsVal::Instance)
            }
            other => other.clone(),
        }
    }

    fn inv_id(&self) -> Option<&str> {
        match self {
            AbsVal::Inv(id) => Some(id),
            _ => None,
        }
    }
}

/// Accumulated observation of one operator-site argument across contexts.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SiteArg {
    Unseen,
    Inv(InvId),
    /// Invariant in every context but under different identities — the
    /// duplication trigger.
    MultiInv,
    Instance,
}

impl SiteArg {
    fn observe(&mut self, v: &AbsVal) {
        let flat = v.flatten();
        *self = match (&*self, &flat) {
            (SiteArg::Unseen, AbsVal::Inv(id)) => SiteArg::Inv(id.clone()),
            (SiteArg::Unseen, _) => SiteArg::Instance,
            (SiteArg::Inv(a), AbsVal::Inv(b)) if a == b => SiteArg::Inv(a.clone()),
            (SiteArg::Inv(_), AbsVal::Inv(_)) => SiteArg::MultiInv,
            (SiteArg::MultiInv, AbsVal::Inv(_)) => SiteArg::MultiInv,
            (_, _) => SiteArg::Instance,
        };
    }
}

/// Binding vector: per argument position, the invariant identity if the
/// argument is batch-invariant (`None` = instance data).
pub type BindingVec = Vec<Option<InvId>>;

/// Result of the reuse analysis.
#[derive(Debug, Clone, Default)]
pub struct ReuseAnalysis {
    /// Final argument classes per operator call site.
    pub arg_classes: BTreeMap<ExprId, Vec<ArgClass>>,
    /// Functions observed under genuinely conflicting invariant bindings
    /// (two contexts with *different* invariant identities at the same
    /// position), with the distinct restricted binding keys seen (used by
    /// [`crate::dup`]).  Positions where one context is invariant and
    /// another is instance data do **not** conflict — duplication cannot
    /// make instance data shared.
    pub conflicts: BTreeMap<String, BTreeSet<String>>,
    /// For every *global-function call site*: the callee and its restricted
    /// binding key (drives call-site rewriting in duplication).
    pub call_signatures: BTreeMap<ExprId, (String, String)>,
}

/// Runs the reuse analysis over a type-checked module.
///
/// # Panics
///
/// Panics if the module has no `@main` (checked by [`crate::analyze`]).
pub fn analyze_reuse(module: &Module) -> ReuseAnalysis {
    let main = module.functions.get("main").expect("module has @main");
    let mut a = Analyzer {
        module,
        site_args: BTreeMap::new(),
        memo: HashMap::new(),
        stack: Vec::new(),
        call_sigs: BTreeMap::new(),
        fn_bindings: BTreeMap::new(),
        queue: Vec::new(),
    };
    let args: Vec<AbsVal> = main
        .params
        .iter()
        .map(|p| match p.kind {
            ParamKind::Model => AbsVal::Inv(format!("param:{}", p.name)),
            ParamKind::Input => AbsVal::Instance,
        })
        .collect();
    a.analyze_fn("main", &args);
    // Drain widened recursive contexts: a recursive call whose context
    // differs from the pending one (e.g. the RNN hidden state becoming
    // loop-carried instance data) must still have its body's operator sites
    // observed under the widened context.
    let mut guard = 0;
    while let Some((func, args)) = a.queue.pop() {
        guard += 1;
        if guard > 1000 {
            break; // widening guarantees termination; belt and braces
        }
        let key = (func.clone(), canon_args(&args));
        if !a.memo.contains_key(&key) {
            a.analyze_fn(&func, &args);
        }
    }

    let mut result = ReuseAnalysis::default();
    for (site, args) in &a.site_args {
        result.arg_classes.insert(
            *site,
            args.iter()
                .map(|s| match s {
                    SiteArg::Inv(_) => ArgClass::Shared,
                    // MultiInv is *not* shared until duplication splits it.
                    _ => ArgClass::Batched,
                })
                .collect(),
        );
    }
    // Conflict positions: ≥2 distinct invariant identities at one position.
    let mut conflict_positions: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (func, bindings) in &a.fn_bindings {
        let nargs = bindings.iter().map(Vec::len).max().unwrap_or(0);
        let mut positions = Vec::new();
        for p in 0..nargs {
            let ids: BTreeSet<&str> =
                bindings.iter().filter_map(|b| b.get(p).and_then(|o| o.as_deref())).collect();
            if ids.len() >= 2 {
                positions.push(p);
            }
        }
        if !positions.is_empty() {
            conflict_positions.insert(func.clone(), positions);
        }
    }
    for (func, positions) in &conflict_positions {
        let keys: BTreeSet<String> =
            a.fn_bindings[func].iter().map(|b| restricted_key(b, positions)).collect();
        if keys.len() >= 2 {
            result.conflicts.insert(func.clone(), keys);
        }
    }
    // Restricted call signatures (only for callees with conflicts).
    for (site, (callee, binding)) in &a.call_sigs {
        if let Some(positions) = conflict_positions.get(callee) {
            result
                .call_signatures
                .insert(*site, (callee.clone(), restricted_key(binding, positions)));
        }
    }
    result
}

fn restricted_key(binding: &BindingVec, positions: &[usize]) -> String {
    let mut s = String::new();
    for &p in positions {
        match binding.get(p).and_then(|o| o.as_deref()) {
            Some(id) => s.push_str(id),
            None => s.push('*'),
        }
        s.push('|');
    }
    s
}

struct Analyzer<'m> {
    module: &'m Module,
    site_args: BTreeMap<ExprId, Vec<SiteArg>>,
    /// (func, canonical args) → result.
    memo: HashMap<(String, String), AbsVal>,
    /// Functions currently being analyzed: (name, canon key, abstract args).
    stack: Vec<(String, String, Vec<AbsVal>)>,
    call_sigs: BTreeMap<ExprId, (String, BindingVec)>,
    fn_bindings: BTreeMap<String, BTreeSet<BindingVec>>,
    /// Widened recursive contexts awaiting analysis.
    queue: Vec<(String, Vec<AbsVal>)>,
}

fn canon_args(args: &[AbsVal]) -> String {
    let mut s = String::new();
    for a in args {
        match a.flatten() {
            AbsVal::Inv(id) => {
                s.push_str(&id);
            }
            _ => s.push('*'),
        }
        s.push('|');
    }
    s
}

fn binding_vec(args: &[AbsVal]) -> BindingVec {
    args.iter()
        .map(|a| match a.flatten() {
            AbsVal::Inv(id) => Some(id),
            _ => None,
        })
        .collect()
}

impl<'m> Analyzer<'m> {
    fn analyze_fn(&mut self, name: &str, args: &[AbsVal]) -> AbsVal {
        let canon = canon_args(args);
        let key = (name.to_string(), canon.clone());
        if let Some(hit) = self.memo.get(&key) {
            return hit.clone();
        }
        if let Some((_, _, pending_args)) = self.stack.iter().find(|(f, _, _)| f == name) {
            if self.stack.iter().any(|(f, k, _)| f == name && *k == canon) {
                // Identical context: optimistic recursion result.
                return AbsVal::Instance;
            }
            // Context differs from the pending one: widen the differing
            // positions to instance data and queue the widened context for
            // a full analysis once the stack unwinds.  Widening bounds the
            // context set (each position is either the original identity or
            // instance data), so the worklist terminates.
            let widened: Vec<AbsVal> = pending_args
                .iter()
                .zip(args)
                .map(|(p, a)| {
                    let (pf, af) = (p.flatten(), a.flatten());
                    if pf == af {
                        af
                    } else {
                        AbsVal::Instance
                    }
                })
                .collect();
            self.queue.push((name.to_string(), widened));
            return AbsVal::Instance;
        }
        self.stack.push((name.to_string(), canon, args.to_vec()));
        self.fn_bindings.entry(name.to_string()).or_default().insert(binding_vec(args));
        let f = &self.module.functions[name];
        let mut env: HashMap<String, AbsVal> = HashMap::new();
        for (p, a) in f.params.iter().zip(args) {
            env.insert(p.name.clone(), a.clone());
        }
        let result = self.eval(&f.body, &mut env);
        self.stack.pop();
        self.memo.insert(key, result.clone());
        result
    }

    fn eval(&mut self, expr: &Expr, env: &mut HashMap<String, AbsVal>) -> AbsVal {
        match &expr.kind {
            ExprKind::Var(name) => env.get(name).cloned().unwrap_or(AbsVal::Instance),
            ExprKind::IntLit(v) => AbsVal::Inv(format!("lit:i{v}")),
            ExprKind::FloatLit(v) => AbsVal::Inv(format!("lit:f{v}")),
            ExprKind::BoolLit(v) => AbsVal::Inv(format!("lit:b{v}")),
            ExprKind::PhaseBoundary => AbsVal::Inv("lit:phase".into()),
            ExprKind::RandRange { .. } => AbsVal::Instance,
            ExprKind::Let { pat, value, body } => {
                let v = self.eval(value, env);
                let mut saved = Vec::new();
                match pat {
                    Pattern::Var(n) => saved.push((n.clone(), env.insert(n.clone(), v))),
                    Pattern::Wildcard => {}
                    Pattern::Tuple(ns) => match v {
                        AbsVal::Tuple(parts) if parts.len() == ns.len() => {
                            for (n, p) in ns.iter().zip(parts) {
                                saved.push((n.clone(), env.insert(n.clone(), p)));
                            }
                        }
                        other => {
                            let flat = other.flatten();
                            for n in ns {
                                saved.push((n.clone(), env.insert(n.clone(), flat.clone())));
                            }
                        }
                    },
                }
                let r = self.eval(body, env);
                for (n, old) in saved {
                    match old {
                        Some(v) => env.insert(n, v),
                        None => env.remove(&n),
                    };
                }
                r
            }
            ExprKind::If { cond, then, els } => {
                let _ = self.eval(cond, env);
                let t = self.eval(then, env);
                let e = self.eval(els, env);
                t.join(&e)
            }
            ExprKind::Match { scrutinee, arms } => {
                let sv = self.eval(scrutinee, env).flatten();
                let mut result: Option<AbsVal> = None;
                for Arm { binders, body, .. } in arms {
                    let mut saved = Vec::new();
                    for b in binders {
                        saved.push((b.clone(), env.insert(b.clone(), sv.clone())));
                    }
                    let r = self.eval(body, env);
                    for (n, old) in saved {
                        match old {
                            Some(v) => env.insert(n, v),
                            None => env.remove(&n),
                        };
                    }
                    result = Some(match result {
                        None => r,
                        Some(acc) => acc.join(&r),
                    });
                }
                result.unwrap_or(AbsVal::Instance)
            }
            ExprKind::Call { callee, args } => {
                let arg_vals: Vec<AbsVal> = args.iter().map(|a| self.eval(a, env)).collect();
                match callee {
                    Callee::Op { .. } => {
                        // Record the observation for each argument.
                        let entry = self
                            .site_args
                            .entry(expr.id)
                            .or_insert_with(|| vec![SiteArg::Unseen; arg_vals.len()]);
                        for (slot, v) in entry.iter_mut().zip(&arg_vals) {
                            slot.observe(v);
                        }
                        // The result is invariant iff every input is.
                        let mut ids = Vec::with_capacity(arg_vals.len());
                        for v in &arg_vals {
                            match v.flatten().inv_id() {
                                Some(id) => ids.push(id.to_string()),
                                None => return AbsVal::Instance,
                            }
                        }
                        AbsVal::Inv(format!("op:{}({})", expr.id, ids.join(",")))
                    }
                    Callee::Global(name) => {
                        self.call_sigs.insert(expr.id, (name.clone(), binding_vec(&arg_vals)));
                        self.analyze_fn(name, &arg_vals)
                    }
                    Callee::Ctor(_) => {
                        // ADT value: collapse fields.
                        let mut acc: Option<AbsVal> = None;
                        for v in &arg_vals {
                            let f = v.flatten();
                            acc = Some(match acc {
                                None => f,
                                Some(a) => a.join(&f),
                            });
                        }
                        acc.unwrap_or_else(|| AbsVal::Inv(format!("ctor:{}", expr.id)))
                    }
                    Callee::Var(name) => {
                        // Calling a lambda-typed variable: conservatively
                        // instance (lambdas are analyzed at `map` below).
                        let _ = env.get(name);
                        AbsVal::Instance
                    }
                }
            }
            ExprKind::Tuple(parts) | ExprKind::Parallel(parts) => {
                AbsVal::Tuple(parts.iter().map(|p| self.eval(p, env)).collect())
            }
            ExprKind::Proj { tuple, index } => {
                let tv = self.eval(tuple, env);
                match tv {
                    AbsVal::Tuple(parts) => parts.get(*index).cloned().unwrap_or(AbsVal::Instance),
                    other => other.flatten(),
                }
            }
            ExprKind::Lambda { .. } => AbsVal::Instance,
            ExprKind::Map { func, list } => {
                let lv = self.eval(list, env).flatten();
                match &func.kind {
                    ExprKind::Lambda { params, body } => {
                        let mut saved = Vec::new();
                        for Param { name, .. } in params {
                            saved.push((name.clone(), env.insert(name.clone(), lv.clone())));
                        }
                        let r = self.eval(body, env);
                        for (n, old) in saved {
                            match old {
                                Some(v) => env.insert(n, v),
                                None => env.remove(&n),
                            };
                        }
                        r
                    }
                    _ => AbsVal::Instance,
                }
            }
            ExprKind::ScalarBin { lhs, rhs, op } => {
                let l = self.eval(lhs, env).flatten();
                let r = self.eval(rhs, env).flatten();
                match (l.inv_id(), r.inv_id()) {
                    (Some(a), Some(b)) => AbsVal::Inv(format!("sb:{}({a},{b})", op.symbol())),
                    _ => AbsVal::Instance,
                }
            }
            ExprKind::ScalarUn { operand, op } => {
                let v = self.eval(operand, env).flatten();
                match v.inv_id() {
                    Some(a) => AbsVal::Inv(format!("su:{op:?}({a})")),
                    None => AbsVal::Instance,
                }
            }
            ExprKind::Sync { tensor, .. } => {
                let _ = self.eval(tensor, env);
                AbsVal::Instance
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_ir::{parse_module, typeck};

    fn analyze(src: &str) -> (Module, ReuseAnalysis) {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let r = analyze_reuse(&m);
        (m, r)
    }

    /// Finds the single op site whose name matches.
    fn op_site(m: &Module, name: &str) -> ExprId {
        let mut found = None;
        for f in m.functions.values() {
            acrobat_ir::ast::visit_exprs(&f.body, &mut |e| {
                if let ExprKind::Call { callee: Callee::Op { name: n, .. }, .. } = &e.kind {
                    if n == name {
                        found = Some(e.id);
                    }
                }
            });
        }
        found.unwrap_or_else(|| panic!("no op site `{name}`"))
    }

    #[test]
    fn weight_is_shared_input_is_batched() {
        let (m, r) = analyze(
            "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] { matmul(%x, $w) }",
        );
        let classes = &r.arg_classes[&op_site(&m, "matmul")];
        assert_eq!(classes, &vec![ArgClass::Batched, ArgClass::Shared]);
    }

    #[test]
    fn constant_tensor_is_shared() {
        // The §E.4 TreeLSTM case: a constant-valued tensor is recognized as
        // reusable (DyNet re-creates it per leaf).
        let (m, r) = analyze(
            "def @main(%x: Tensor[(1, 2)]) -> Tensor[(1, 2)] { add(%x, zeros[shape=(1, 2)]()) }",
        );
        let classes = &r.arg_classes[&op_site(&m, "add")];
        assert_eq!(classes, &vec![ArgClass::Batched, ArgClass::Shared]);
    }

    #[test]
    fn op_on_params_stays_shared() {
        // w2 = transpose(w) is still batch-invariant, so its consumers see a
        // shared argument.
        let (m, r) = analyze(
            "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                let %wt = transpose($w);
                matmul(%x, %wt)
             }",
        );
        let classes = &r.arg_classes[&op_site(&m, "matmul")];
        assert_eq!(classes[1], ArgClass::Shared);
        // transpose itself takes a shared input.
        let t = &r.arg_classes[&op_site(&m, "transpose")];
        assert_eq!(t[0], ArgClass::Shared);
    }

    #[test]
    fn recursion_keeps_weight_shared() {
        let src = r#"
            def @rnn(%xs: List[Tensor[(1, 2)]], %h: Tensor[(1, 2)], $w: Tensor[(2, 2)]) -> Tensor[(1, 2)] {
                match %xs {
                    Nil => %h,
                    Cons(%x, %t) => {
                        let %nh = tanh(matmul(add(%x, %h), $w));
                        @rnn(%t, %nh, $w)
                    }
                }
            }
            def @main($w: Tensor[(2, 2)], $h0: Tensor[(1, 2)], %xs: List[Tensor[(1, 2)]]) -> Tensor[(1, 2)] {
                @rnn(%xs, $h0, $w)
            }
        "#;
        let (m, r) = analyze(src);
        let classes = &r.arg_classes[&op_site(&m, "matmul")];
        assert_eq!(classes[1], ArgClass::Shared, "recurrent weight stays shared");
        assert_eq!(classes[0], ArgClass::Batched);
        assert!(r.conflicts.is_empty());
    }

    #[test]
    fn birnn_two_weight_contexts_conflict() {
        // The paper's §C.1 example: one @rnn called with two different
        // parameter sets — conflict, requiring duplication.
        let src = r#"
            def @step(%x: Tensor[(1, 2)], $w: Tensor[(2, 2)]) -> Tensor[(1, 2)] {
                tanh(matmul(%x, $w))
            }
            def @main($wf: Tensor[(2, 2)], $wb: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                let %f = @step(%x, $wf);
                let %b = @step(%x, $wb);
                add(%f, %b)
            }
        "#;
        let (m, r) = analyze(src);
        assert!(r.conflicts.contains_key("step"), "conflicts: {:?}", r.conflicts);
        assert_eq!(r.conflicts["step"].len(), 2);
        // Without duplication the weight argument must degrade to batched.
        let classes = &r.arg_classes[&op_site(&m, "matmul")];
        assert_eq!(classes[1], ArgClass::Batched);
    }

    #[test]
    fn same_context_twice_is_no_conflict() {
        let src = r#"
            def @step(%x: Tensor[(1, 2)], $w: Tensor[(2, 2)]) -> Tensor[(1, 2)] {
                tanh(matmul(%x, $w))
            }
            def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                let %a = @step(%x, $w);
                @step(%a, $w)
            }
        "#;
        let (m, r) = analyze(src);
        assert!(r.conflicts.is_empty());
        let classes = &r.arg_classes[&op_site(&m, "matmul")];
        assert_eq!(classes[1], ArgClass::Shared);
    }

    #[test]
    fn branch_selected_weight_not_shared() {
        // A weight chosen by instance-dependent control flow differs across
        // instances — must be batched.
        let src = r#"
            def @main($w1: Tensor[(2, 2)], $w2: Tensor[(2, 2)], %x: Tensor[(1, 2)], %c: Bool) -> Tensor[(1, 2)] {
                let %w = if %c { $w1 } else { $w2 };
                matmul(%x, %w)
            }
        "#;
        let (m, r) = analyze(src);
        let classes = &r.arg_classes[&op_site(&m, "matmul")];
        assert_eq!(classes[1], ArgClass::Batched);
    }

    #[test]
    fn map_lambda_sites_observed() {
        let src = r#"
            def @main($w: Tensor[(2, 2)], %xs: List[Tensor[(1, 2)]]) -> List[Tensor[(1, 2)]] {
                map(fn(%p) { matmul(%p, $w) }, %xs)
            }
        "#;
        let (m, r) = analyze(src);
        let classes = &r.arg_classes[&op_site(&m, "matmul")];
        assert_eq!(classes, &vec![ArgClass::Batched, ArgClass::Shared]);
    }

    #[test]
    fn sample_result_is_instance() {
        let src = r#"
            def @main($w: Tensor[(1, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                let %s = sample(%x);
                if %s > 0.5 { relu(%x) } else { relu($w) }
            }
        "#;
        let (m, r) = analyze(src);
        // Two relu sites: one sees instance data, one sees the param.
        let mut seen = Vec::new();
        for f in m.functions.values() {
            acrobat_ir::ast::visit_exprs(&f.body, &mut |e| {
                if let ExprKind::Call { callee: Callee::Op { name, .. }, .. } = &e.kind {
                    if name == "relu" {
                        seen.push(r.arg_classes[&e.id][0]);
                    }
                }
            });
        }
        seen.sort_by_key(|c| format!("{c}"));
        assert_eq!(seen, vec![ArgClass::Batched, ArgClass::Shared]);
    }
}
