//! Ghost-operator insertion (§4.1 and §B.3, Fig. 4 of the paper).
//!
//! Depth-based scheduling is eager: after an `if` whose branches perform
//! different numbers of operator steps, instances that took the short branch
//! arrive at the join point at a smaller depth than instances that took the
//! long branch.  A subsequent common operator `opB` then executes in two
//! separate batches (Fig. 4, upper panes).  ACROBAT statically pads the
//! short branch with *ghost operators* — pure depth bumps, ignored at kernel
//! execution time — so that both populations align and `opB` batches once
//! (Fig. 4, lower panes).
//!
//! The pass finds every conditional whose branches are straight-line
//! (operator work only, no nested control flow or calls) and records, for
//! the shorter branch, the number of depth bumps to insert.

use std::collections::BTreeMap;

use acrobat_ir::{Callee, Expr, ExprId, ExprKind, Module};

use crate::blocks::BlockMap;

/// Ghost insertions: branch expression id → number of ghost depth bumps the
/// lowering appends after that branch.
pub fn ghost_insertions(module: &Module, blocks: &BlockMap) -> BTreeMap<ExprId, usize> {
    let mut out = BTreeMap::new();
    for f in module.functions.values() {
        acrobat_ir::ast::visit_exprs(&f.body, &mut |e| {
            if let ExprKind::If { then, els, .. } = &e.kind {
                if let (Some(t), Some(l)) = (branch_units(then, blocks), branch_units(els, blocks))
                {
                    if t != l {
                        let (short, pad) = if t < l { (then.id, l - t) } else { (els.id, t - l) };
                        out.insert(short, pad);
                    }
                }
            }
        });
    }
    out
}

/// Number of scheduling units (fusion groups) a straight-line branch emits;
/// `None` if the branch is not straight-line (contains calls, nested control
/// flow, maps or syncs — padding those is unsound statically).
fn branch_units(branch: &Expr, blocks: &BlockMap) -> Option<usize> {
    let mut straight = true;
    let mut sites = Vec::new();
    acrobat_ir::ast::visit_exprs(branch, &mut |e| match &e.kind {
        ExprKind::If { .. }
        | ExprKind::Match { .. }
        | ExprKind::Map { .. }
        | ExprKind::Parallel(_)
        | ExprKind::Sync { .. }
        | ExprKind::Lambda { .. }
            // The outer visit starts at the branch itself, which may be the
            // If — exclude only *nested* control flow.
            if e.id != branch.id => {
                straight = false;
            }
        ExprKind::Call { callee, .. } => match callee {
            Callee::Op { .. } => sites.push(e.id),
            _ => straight = false,
        },
        _ => {}
    });
    if !straight {
        return None;
    }
    // Count distinct groups covering these sites.
    let mut groups = std::collections::BTreeSet::new();
    for block in &blocks.blocks {
        for g in &block.groups {
            if g.sites.iter().any(|s| sites.contains(s)) {
                groups.insert(g.id);
            }
        }
    }
    Some(groups.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::find_blocks;
    use crate::fusion::plan_fusion;
    use crate::AnalysisOptions;
    use acrobat_ir::{parse_module, typeck};

    fn ghosts(src: &str) -> BTreeMap<ExprId, usize> {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let b = plan_fusion(&m, find_blocks(&m), AnalysisOptions::none(), &Default::default());
        ghost_insertions(&m, &b)
    }

    #[test]
    fn uneven_branches_get_padding() {
        // Fig. 4: `let t1 = if (…) opA() else t1` — the else branch does no
        // operator work and receives one ghost bump.
        let src = r#"
            def @main(%x: Tensor[(1, 2)], %c: Bool) -> Tensor[(1, 2)] {
                let %t1 = if %c { relu(%x) } else { %x };
                tanh(%t1)
            }
        "#;
        let g = ghosts(src);
        assert_eq!(g.len(), 1);
        assert_eq!(*g.values().next().unwrap(), 1);
    }

    #[test]
    fn balanced_branches_need_no_padding() {
        let src = r#"
            def @main(%x: Tensor[(1, 2)], %c: Bool) -> Tensor[(1, 2)] {
                if %c { relu(%x) } else { tanh(%x) }
            }
        "#;
        assert!(ghosts(src).is_empty());
    }

    #[test]
    fn two_op_difference_pads_two() {
        let src = r#"
            def @main(%x: Tensor[(1, 2)], %c: Bool) -> Tensor[(1, 2)] {
                if %c { neg(tanh(relu(%x))) } else { sigmoid(%x) }
            }
        "#;
        let g = ghosts(src);
        assert_eq!(g.len(), 1);
        assert_eq!(*g.values().next().unwrap(), 2);
    }

    #[test]
    fn branches_with_calls_are_skipped() {
        let src = r#"
            def @f(%x: Tensor[(1, 2)]) -> Tensor[(1, 2)] { relu(%x) }
            def @main(%x: Tensor[(1, 2)], %c: Bool) -> Tensor[(1, 2)] {
                if %c { @f(%x) } else { %x }
            }
        "#;
        assert!(ghosts(src).is_empty(), "cannot statically pad across calls");
    }

    #[test]
    fn fusion_changes_unit_counts() {
        // With fusion on, relu+tanh+neg is one group → padding is 1, not 3…
        let src = r#"
            def @main(%x: Tensor[(1, 2)], %c: Bool) -> Tensor[(1, 2)] {
                if %c { neg(tanh(relu(%x))) } else { %x }
            }
        "#;
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let fused =
            plan_fusion(&m, find_blocks(&m), AnalysisOptions::default(), &Default::default());
        let g = ghost_insertions(&m, &fused);
        assert_eq!(*g.values().next().unwrap(), 1);
        let unfused =
            plan_fusion(&m, find_blocks(&m), AnalysisOptions::none(), &Default::default());
        let g2 = ghost_insertions(&m, &unfused);
        assert_eq!(*g2.values().next().unwrap(), 3);
    }
}
