//! Static invocation-frequency estimation (§D.1 of the paper).
//!
//! The auto-scheduler prioritizes kernels by how often they execute.  When
//! profile-guided optimization is not possible, ACROBAT "provides a simple
//! static analysis to heuristically perform this estimation based on how
//! deeply nested an operator call is in the recursion".
//!
//! The heuristic here: every enclosing repetition level — a self-recursive
//! function body, or a `map` body — multiplies an operator's estimated
//! execution count by a nominal trip count.  Operators in `@main`'s
//! straight-line code count once; the inner RNN cell of the NestedRNN model
//! (two repetition levels deep) is weighted `TRIP²` — which is exactly the
//! prioritization Table 9 needs when no profile exists.

use std::collections::BTreeMap;

use acrobat_ir::{Callee, Expr, ExprId, ExprKind, Module};

/// Nominal trip count assumed per repetition level.
pub const NOMINAL_TRIP: u64 = 16;

/// Estimates, for every operator call site, how many times it executes per
/// instance (relative weights, not absolute counts).
pub fn estimate_frequencies(module: &Module) -> BTreeMap<ExprId, u64> {
    let recursive: Vec<&str> = module
        .functions
        .iter()
        .filter(|(name, f)| {
            let mut rec = false;
            acrobat_ir::ast::visit_exprs(&f.body, &mut |e| {
                if let ExprKind::Call { callee: Callee::Global(n), .. } = &e.kind {
                    if n == *name {
                        rec = true;
                    }
                }
            });
            rec
        })
        .map(|(n, _)| n.as_str())
        .collect();

    let mut out = BTreeMap::new();
    // Fixpoint over call multiplicities: start from @main at weight 1 and
    // push weights through calls; each call into a recursive function (or a
    // map body) multiplies by the nominal trip count.  Functions reachable
    // along several paths accumulate.
    let mut fn_weight: BTreeMap<&str, u64> = BTreeMap::new();
    fn_weight.insert("main", 1);
    // Simple propagation: a few rounds suffice for the call-depths models
    // have (no mutual recursion in the suite).
    for _ in 0..module.functions.len() + 2 {
        let snapshot = fn_weight.clone();
        for (name, f) in &module.functions {
            let Some(&w) = snapshot.get(name.as_str()) else { continue };
            let body_weight =
                if recursive.contains(&name.as_str()) { w.saturating_mul(NOMINAL_TRIP) } else { w };
            collect_calls(&f.body, name, body_weight, &mut fn_weight);
        }
    }

    for (name, f) in &module.functions {
        let Some(&w) = fn_weight.get(name.as_str()) else { continue };
        let body_weight =
            if recursive.contains(&name.as_str()) { w.saturating_mul(NOMINAL_TRIP) } else { w };
        record_sites(&f.body, body_weight, &mut out);
    }
    out
}

fn collect_calls<'m>(
    e: &'m Expr,
    enclosing: &str,
    weight: u64,
    fn_weight: &mut BTreeMap<&'m str, u64>,
) {
    let mut stack = vec![(e, weight)];
    while let Some((e, w)) = stack.pop() {
        match &e.kind {
            ExprKind::Call { callee: Callee::Global(n), args } => {
                if n != enclosing {
                    let entry = fn_weight.entry(n.as_str()).or_insert(0);
                    *entry = (*entry).max(w);
                }
                for a in args {
                    stack.push((a, w));
                }
            }
            ExprKind::Map { func, list } => {
                stack.push((list, w));
                stack.push((func, w.saturating_mul(NOMINAL_TRIP)));
            }
            _ => {
                each_child(e, |c| stack.push((c, w)));
            }
        }
    }
}

fn record_sites(e: &Expr, weight: u64, out: &mut BTreeMap<ExprId, u64>) {
    let mut stack = vec![(e, weight)];
    while let Some((e, w)) = stack.pop() {
        match &e.kind {
            ExprKind::Call { callee: Callee::Op { .. }, args } => {
                out.insert(e.id, w);
                for a in args {
                    stack.push((a, w));
                }
            }
            ExprKind::Map { func, list } => {
                stack.push((list, w));
                stack.push((func, w.saturating_mul(NOMINAL_TRIP)));
            }
            _ => each_child(e, |c| stack.push((c, w))),
        }
    }
}

fn each_child<'m>(e: &'m Expr, mut f: impl FnMut(&'m Expr)) {
    match &e.kind {
        ExprKind::Let { value, body, .. } => {
            f(value);
            f(body);
        }
        ExprKind::If { cond, then, els } => {
            f(cond);
            f(then);
            f(els);
        }
        ExprKind::Match { scrutinee, arms } => {
            f(scrutinee);
            for arm in arms {
                f(&arm.body);
            }
        }
        ExprKind::Call { args, .. } => args.iter().for_each(f),
        ExprKind::Tuple(es) | ExprKind::Parallel(es) => es.iter().for_each(f),
        ExprKind::Proj { tuple, .. } => f(tuple),
        ExprKind::Lambda { body, .. } => f(body),
        ExprKind::Map { func, list } => {
            f(func);
            f(list);
        }
        ExprKind::ScalarBin { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::ScalarUn { operand, .. } => f(operand),
        ExprKind::Sync { tensor, .. } => f(tensor),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_ir::{parse_module, typeck};

    fn freqs(src: &str) -> (Module, BTreeMap<ExprId, u64>) {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let f = estimate_frequencies(&m);
        (m, f)
    }

    fn site_weight(m: &Module, f: &BTreeMap<ExprId, u64>, op: &str) -> u64 {
        let mut w = 0;
        for func in m.functions.values() {
            acrobat_ir::ast::visit_exprs(&func.body, &mut |e| {
                if let ExprKind::Call { callee: Callee::Op { name, .. }, .. } = &e.kind {
                    if name == op {
                        w = w.max(f.get(&e.id).copied().unwrap_or(0));
                    }
                }
            });
        }
        w
    }

    #[test]
    fn nesting_depth_multiplies() {
        // tanh sits two repetition levels deep (inner inside outer); sigmoid
        // only one.
        let src = r#"
            def @inner(%h: Tensor[(1, 2)], %n: Int, $w: Tensor[(2, 2)]) -> Tensor[(1, 2)] {
                if %n <= 0 { %h } else { @inner(tanh(matmul(%h, $w)), %n - 1, $w) }
            }
            def @outer(%h: Tensor[(1, 2)], %n: Int, $w: Tensor[(2, 2)]) -> Tensor[(1, 2)] {
                if %n <= 0 { %h } else {
                    let %hh = @inner(%h, 5, $w);
                    @outer(sigmoid(matmul(%hh, $w)), %n - 1, $w)
                }
            }
            def @main($w: Tensor[(2, 2)], %h: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                relu(@outer(%h, 5, $w))
            }
        "#;
        let (m, f) = freqs(src);
        let inner = site_weight(&m, &f, "tanh");
        let outer = site_weight(&m, &f, "sigmoid");
        let flat = site_weight(&m, &f, "relu");
        assert_eq!(flat, 1);
        assert_eq!(outer, NOMINAL_TRIP);
        assert_eq!(inner, NOMINAL_TRIP * NOMINAL_TRIP);
    }

    #[test]
    fn map_counts_as_a_repetition_level() {
        let src = r#"
            def @main($w: Tensor[(2, 2)], %xs: List[Tensor[(1, 2)]]) -> List[Tensor[(1, 2)]] {
                map(fn(%p) { relu(matmul(%p, $w)) }, %xs)
            }
        "#;
        let (m, f) = freqs(src);
        assert_eq!(site_weight(&m, &f, "relu"), NOMINAL_TRIP);
    }

    #[test]
    fn every_op_site_is_estimated() {
        let src = r#"
            def @f(%x: Tensor[(1, 2)], $w: Tensor[(2, 2)]) -> Tensor[(1, 2)] {
                tanh(matmul(%x, $w))
            }
            def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
                add(@f(%x, $w), relu(%x))
            }
        "#;
        let (m, f) = freqs(src);
        for func in m.functions.values() {
            acrobat_ir::ast::visit_exprs(&func.body, &mut |e| {
                if let ExprKind::Call { callee: Callee::Op { .. }, .. } = &e.kind {
                    assert!(f.contains_key(&e.id), "unestimated op site");
                }
            });
        }
    }
}
