use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Result, Shape, TensorError};

/// An owned host tensor: a dense row-major `f32` buffer plus a [`Shape`].
///
/// Host tensors are used for model weights, input embeddings and reference
/// results in tests; runtime intermediates live in the simulated device
/// arena ([`crate::DeviceMem`]) instead.
///
/// ```
/// use acrobat_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert!(t.data().iter().all(|&x| x == 0.0));
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat buffer and shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len()` does not equal the
    /// shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::DataLength { got: data.len(), expected: shape.numel() });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor::fill(dims, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::fill(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn fill(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// Creates a rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: vec![value] }
    }

    /// Creates a tensor whose elements are produced by `f(flat_index)`.
    pub fn from_fn(dims: &[usize], f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(f).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The flat row-major element buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat element buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer and shape.
    pub fn into_parts(self) -> (Vec<f32>, Shape) {
        (self.data, self.shape)
    }

    /// The scalar value of a single-element tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if the tensor has more than one
    /// element.
    pub fn item(&self) -> Result<f32> {
        if self.data.len() == 1 {
            Ok(self.data[0])
        } else {
            Err(TensorError::DataLength { got: self.data.len(), expected: 1 })
        }
    }

    /// Reinterprets the buffer under a new shape with the same volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeNumel`] on a volume mismatch.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let to = Shape::new(dims);
        if to.numel() != self.shape.numel() {
            return Err(TensorError::ReshapeNumel { from: self.shape.clone(), to });
        }
        Ok(Tensor { shape: to, data: self.data.clone() })
    }

    /// Maximum absolute difference against another tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max))
    }

    /// Returns `true` if all elements are within `tol` of `other`.
    ///
    /// Shape mismatch counts as "not close" rather than an error, which is
    /// the convenient behaviour in tests.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.max_abs_diff(other).map(|d| d <= tol).unwrap_or(false)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        const LIMIT: usize = 8;
        if self.data.len() <= LIMIT {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "{:?}…(+{})", &self.data[..LIMIT], self.data.len() - LIMIT)
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::DataLength { got: 5, expected: 6 })
        ));
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(4.25).item().unwrap(), 4.25);
        assert!(Tensor::zeros(&[2]).item().is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 3], |i| i as f32);
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.5], &[2]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert!(a.allclose(&b, 0.5));
        assert!(!a.allclose(&b, 0.4));
        assert!(!a.allclose(&Tensor::zeros(&[3]), 1e9));
    }

    #[test]
    fn debug_truncates() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("+92"));
    }
}
