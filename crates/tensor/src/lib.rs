//! CPU tensor substrate for the ACROBAT reproduction.
//!
//! The ACROBAT paper generates CUDA kernels through TVM; this crate is the
//! stand-in substrate: a small, fully self-contained tensor library that the
//! rest of the workspace builds batched execution on top of.  It provides
//!
//! * [`Shape`] — dense row-major shapes with stride arithmetic,
//! * [`Tensor`] — owned host tensors (model weights, inputs, references),
//! * [`DeviceMem`] / [`DeviceTensor`] — an arena-allocated simulated device
//!   memory with explicit byte accounting for uploads, gathers and copies,
//! * [`PrimOp`] — the primitive tensor operators the frontend language can
//!   invoke, with shape inference, FLOP counting and a reference executor,
//! * [`batch`] — batched kernel execution in the two styles the paper
//!   compares: *explicit gather* (DyNet-style: copy scattered operands into a
//!   contiguous staging buffer, then run a dense batched kernel) and *gather
//!   fusion* (ACROBAT-style: the kernel reads operands through an
//!   offset-indirection table, §5.2 of the paper).
//!
//! Numerical results of the two batched paths are bit-identical; their cost
//! difference (bytes moved, kernel launches) is surfaced through
//! [`batch::BatchStats`] and consumed by the simulated accelerator in
//! `acrobat-runtime`.
//!
//! # Example
//!
//! ```
//! use acrobat_tensor::{Tensor, PrimOp, execute};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::from_vec(vec![0.5; 4], &[2, 2])?;
//! let out = execute(&PrimOp::Add, &[&a, &b])?;
//! assert_eq!(out.data(), &[1.5, 2.5, 3.5, 4.5]);
//! # Ok::<(), acrobat_tensor::TensorError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod arena;
pub mod batch;
mod error;
pub mod ops;
mod shape;
mod tensor;

pub use arena::{
    DeviceMem, DeviceTensor, ExecView, FaultKind, FaultMode, FaultPlan, FaultSite, MemStats,
};
pub use batch::{BatchMode, BatchStats};
pub use error::{FaultClass, TensorError};
pub use ops::{
    execute, execute_into, execute_slices, flops, infer_shape, map_binary, map_unary, matmul_raw,
    matmul_raw_blocked, BinaryKind, PrimOp, UnaryKind,
};
pub use shape::Shape;
pub use tensor::Tensor;

/// Result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
