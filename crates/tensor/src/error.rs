use std::fmt;

use crate::Shape;

/// Errors produced by tensor construction and kernel execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TensorError {
    /// The flat data length does not match the product of the shape extents.
    DataLength {
        /// Length of the provided buffer.
        got: usize,
        /// Length implied by the shape.
        expected: usize,
    },
    /// Two shapes that were required to match (or broadcast) do not.
    ShapeMismatch {
        /// Operation name for context.
        op: &'static str,
        /// Left-hand shape.
        lhs: Shape,
        /// Right-hand shape.
        rhs: Shape,
    },
    /// An operator received the wrong number of inputs.
    Arity {
        /// Operation name for context.
        op: &'static str,
        /// Number of inputs received.
        got: usize,
        /// Number of inputs expected.
        expected: usize,
    },
    /// A rank other than the supported one was supplied.
    Rank {
        /// Operation name for context.
        op: &'static str,
        /// The offending shape.
        shape: Shape,
        /// Expected rank.
        expected: usize,
    },
    /// An axis argument is out of range for the operand rank.
    Axis {
        /// Operation name for context.
        op: &'static str,
        /// Requested axis.
        axis: usize,
        /// Operand rank.
        rank: usize,
    },
    /// A slice range falls outside the operand extent.
    SliceRange {
        /// Requested start.
        start: usize,
        /// Requested length.
        len: usize,
        /// Extent along the sliced axis.
        extent: usize,
    },
    /// Reshape target has a different element count than the source.
    ReshapeNumel {
        /// Source shape.
        from: Shape,
        /// Target shape.
        to: Shape,
    },
    /// The simulated device memory arena is exhausted.
    ///
    /// Used to reproduce the paper's out-of-memory behaviour (the DyNet
    /// Berxit configuration at batch size 64 is killed by OOM in Table 4).
    DeviceOom {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes remaining in the arena.
        available: usize,
    },
    /// A device tensor handle refers to a different arena generation.
    ///
    /// Raised when a handle created before [`crate::DeviceMem::reset`] is
    /// used afterwards.
    StaleHandle,
    /// Batched execution was invoked with inconsistent per-instance shapes.
    BatchShape {
        /// Operation name for context.
        op: &'static str,
        /// First conflicting shape.
        first: Shape,
        /// Second conflicting shape.
        other: Shape,
    },
    /// Batched execution received an empty batch.
    EmptyBatch,
    /// A synthetic kernel failure injected by an armed [`crate::FaultPlan`]
    /// (checked-mode fault injection; never produced in normal operation).
    Injected {
        /// The operation class the fault tripped on.
        site: crate::FaultSite,
        /// Zero-based occurrence of that operation that failed.
        nth: u64,
    },
    /// The request was cooperatively cancelled via its cancel token.
    Cancelled,
    /// The request exceeded its deadline budget.
    DeadlineExceeded {
        /// Modeled (or wall-clock) microseconds spent when the check fired.
        spent_us: f64,
        /// The request's budget in microseconds.
        budget_us: f64,
    },
}

/// Coarse recovery classification of a [`TensorError`], driving the
/// runtime's retry policy: transient faults may be retried, fatal faults
/// abort the request, interrupts (cancellation / deadline) are never
/// retried and are reported as request outcomes rather than device errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Plausibly succeeds on retry (e.g. an injected kernel fault standing
    /// in for a flaky accelerator launch).
    Transient,
    /// Deterministic or resource-exhaustion failure; retrying cannot help.
    Fatal,
    /// Cooperative interruption (cancellation or deadline); retrying is
    /// wrong by definition.
    Interrupt,
}

impl TensorError {
    /// Classifies this error for the retry / recovery machinery.
    pub fn fault_class(&self) -> FaultClass {
        match self {
            // Injected kernel faults model flaky-accelerator launches: the
            // canonical transient error.  Everything shape/arity-like is a
            // program bug, and OOM will recur on an identical replay.
            TensorError::Injected { .. } => FaultClass::Transient,
            TensorError::Cancelled | TensorError::DeadlineExceeded { .. } => FaultClass::Interrupt,
            _ => FaultClass::Fatal,
        }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLength { got, expected } => {
                write!(f, "data length {got} does not match shape volume {expected}")
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs} and {rhs}")
            }
            TensorError::Arity { op, got, expected } => {
                write!(f, "{op}: expected {expected} inputs, got {got}")
            }
            TensorError::Rank { op, shape, expected } => {
                write!(f, "{op}: expected rank {expected}, got shape {shape}")
            }
            TensorError::Axis { op, axis, rank } => {
                write!(f, "{op}: axis {axis} out of range for rank {rank}")
            }
            TensorError::SliceRange { start, len, extent } => {
                write!(f, "slice [{start}, {start}+{len}) out of range for extent {extent}")
            }
            TensorError::ReshapeNumel { from, to } => {
                write!(f, "cannot reshape {from} to {to}: element counts differ")
            }
            TensorError::DeviceOom { requested, available } => {
                write!(
                    f,
                    "simulated device out of memory: requested {requested} bytes, {available} available"
                )
            }
            TensorError::StaleHandle => {
                write!(f, "device tensor handle is stale (arena was reset)")
            }
            TensorError::BatchShape { op, first, other } => {
                write!(f, "{op}: batch mixes instance shapes {first} and {other}")
            }
            TensorError::EmptyBatch => write!(f, "batched kernel invoked with an empty batch"),
            TensorError::Injected { site, nth } => {
                write!(f, "injected fault: {site} operation {nth} failed")
            }
            TensorError::Cancelled => write!(f, "request cancelled"),
            TensorError::DeadlineExceeded { spent_us, budget_us } => {
                write!(f, "deadline exceeded: spent {spent_us:.1}us of {budget_us:.1}us budget")
            }
        }
    }
}

impl std::error::Error for TensorError {}
