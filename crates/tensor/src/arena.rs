//! Arena-allocated simulated device memory.
//!
//! The paper's runtime arena-allocates tensors on the GPU and batches
//! CPU↔GPU transfers (§D.3).  [`DeviceMem`] reproduces that structure on the
//! host: a single bump-allocated `f32` buffer standing in for accelerator
//! memory, with explicit byte accounting for uploads, downloads, gathers and
//! copies.  The byte counters feed the simulated accelerator's memory-cost
//! terms, and the fixed capacity lets the benchmark harness reproduce the
//! paper's out-of-memory configurations (DyNet Berxit at batch 64, Table 4).

use std::fmt;

use crate::{Result, Shape, Tensor, TensorError};

/// A handle to a tensor resident in [`DeviceMem`].
///
/// Handles are plain offset+shape descriptors — cheap to copy and safe to
/// store in dataflow-graph nodes.  A handle is invalidated by
/// [`DeviceMem::reset`]; using a stale handle returns
/// [`TensorError::StaleHandle`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeviceTensor {
    offset: usize,
    shape: Shape,
    generation: u64,
}

impl DeviceTensor {
    /// Element offset of the tensor within the arena.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Reinterprets this handle under a new shape of equal volume without
    /// touching memory (zero-cost view, used for reshape).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeNumel`] on a volume mismatch.
    pub fn reshaped(&self, shape: &Shape) -> Result<DeviceTensor> {
        if shape.numel() != self.shape.numel() {
            return Err(TensorError::ReshapeNumel { from: self.shape.clone(), to: shape.clone() });
        }
        Ok(DeviceTensor { offset: self.offset, shape: shape.clone(), generation: self.generation })
    }
}

/// Transfer and allocation statistics for a [`DeviceMem`].
///
/// These are the raw inputs to the Table 5 activity breakdown ("Mem. copy
/// time") in the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Bytes copied host → device (`upload`).
    pub upload_bytes: u64,
    /// Bytes copied device → host (`download`).
    pub download_bytes: u64,
    /// Bytes moved device → device by explicit gathers.
    pub gather_bytes: u64,
    /// Number of explicit gather copies performed.
    pub gather_ops: u64,
    /// Gathers skipped because operands were already contiguous.
    pub contiguous_hits: u64,
    /// Number of host→device transfer *operations* (each models one
    /// `cudaMemcpy` call; batching transfers reduces this count).
    pub upload_ops: u64,
    /// Live allocation high-water mark, in elements.
    pub peak_elements: u64,
}

impl MemStats {
    /// Total bytes moved across all categories.
    pub fn total_bytes(&self) -> u64 {
        self.upload_bytes + self.download_bytes + self.gather_bytes
    }
}

/// Operation class a [`FaultPlan`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A batched kernel launch (tripped by the executor at launch entry).
    Launch,
    /// A device-side gather ([`DeviceMem::gather`]).
    Gather,
    /// A host→device transfer ([`DeviceMem::upload`] /
    /// [`DeviceMem::upload_batched`]).
    Upload,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultSite::Launch => "launch",
            FaultSite::Gather => "gather",
            FaultSite::Upload => "upload",
        })
    }
}

/// Error an injected fault produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// [`TensorError::DeviceOom`], as if the arena were exhausted.
    Oom,
    /// [`TensorError::Injected`], standing in for a kernel failure.
    Kernel,
}

/// When an armed [`FaultPlan`] trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Deterministic one-shot: fail the zero-based `nth` operation at the
    /// plan's site, exactly once.
    Nth(u64),
    /// Seeded probabilistic fault storm: every operation at the plan's site
    /// fails independently with probability `ppm / 1_000_000`, driven by a
    /// splitmix64 stream seeded from `seed` — the same plan against the
    /// same operation sequence trips at the same occurrences every time.
    Rate {
        /// Failure probability in parts per million.
        ppm: u32,
        /// Seed of the per-arming pseudo-random stream.
        seed: u64,
    },
}

/// Deterministic fault-injection plan: fail operations at `site` with an
/// error of `kind`, either one-shot (`nth`) or as a seeded probabilistic
/// storm (`rate=p`) — see [`FaultMode`].
///
/// Used by the runtime's checked mode and the chaos harness to prove that
/// every mid-flush error path leaves the runtime well-defined and
/// resumable.  Arm with [`DeviceMem::arm_fault`]; a one-shot plan fires at
/// most once and stays armed (but spent) until [`DeviceMem::clear_fault`];
/// a storm keeps rolling until cleared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Operation class to fail.
    pub site: FaultSite,
    /// One-shot occurrence or probabilistic storm.
    pub mode: FaultMode,
    /// Error to produce.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// One-shot plan failing the zero-based `nth` operation at `site`.
    pub fn nth(site: FaultSite, nth: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan { site, mode: FaultMode::Nth(nth), kind }
    }

    /// Seeded storm plan failing each operation at `site` with probability
    /// `ppm / 1_000_000`.
    pub fn storm(site: FaultSite, ppm: u32, seed: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan { site, mode: FaultMode::Rate { ppm, seed }, kind }
    }

    /// Parses the `site:nth:kind` one-shot syntax (e.g. `"launch:3:oom"`,
    /// `"gather:0:kernel"`) or the `site:rate=p[@seed]:kind` storm syntax
    /// (e.g. `"launch:rate=0.01:kernel"`, `"upload:rate=5%@42:oom"`), where
    /// `p` is a probability in `[0, 1]` or a percentage.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed component.
    pub fn parse(s: &str) -> std::result::Result<FaultPlan, String> {
        let mut parts = s.split(':');
        let (site, occurrence, kind) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(a), Some(b), Some(c), None) => (a, b, c),
                _ => return Err(format!("expected site:nth:kind or site:rate=p:kind, got {s:?}")),
            };
        let site = match site {
            "launch" => FaultSite::Launch,
            "gather" => FaultSite::Gather,
            "upload" => FaultSite::Upload,
            _ => return Err(format!("unknown fault site {site:?}")),
        };
        let mode = if let Some(spec) = occurrence.strip_prefix("rate=") {
            let (prob, seed) = match spec.split_once('@') {
                Some((p, s)) => {
                    (p, s.parse::<u64>().map_err(|e| format!("bad storm seed {s:?}: {e}"))?)
                }
                None => (spec, 0),
            };
            let fraction = match prob.strip_suffix('%') {
                Some(pct) => {
                    pct.parse::<f64>().map_err(|e| format!("bad rate {prob:?}: {e}"))? / 100.0
                }
                None => prob.parse::<f64>().map_err(|e| format!("bad rate {prob:?}: {e}"))?,
            };
            if !(0.0..=1.0).contains(&fraction) {
                return Err(format!("rate {prob:?} outside [0, 1]"));
            }
            FaultMode::Rate { ppm: (fraction * 1e6).round() as u32, seed }
        } else {
            FaultMode::Nth(
                occurrence
                    .parse::<u64>()
                    .map_err(|e| format!("bad occurrence {occurrence:?}: {e}"))?,
            )
        };
        let kind = match kind {
            "oom" => FaultKind::Oom,
            "kernel" => FaultKind::Kernel,
            _ => return Err(format!("unknown fault kind {kind:?}")),
        };
        Ok(FaultPlan { site, mode, kind })
    }
}

/// Bump-allocated simulated device memory.
///
/// ```
/// use acrobat_tensor::{DeviceMem, Tensor};
///
/// let mut mem = DeviceMem::new(1 << 20);
/// let t = mem.upload(&Tensor::ones(&[2, 2]))?;
/// assert_eq!(mem.read(&t)?, &[1.0; 4]);
/// # Ok::<(), acrobat_tensor::TensorError>(())
/// ```
pub struct DeviceMem {
    buf: Vec<f32>,
    top: usize,
    generation: u64,
    stats: MemStats,
    /// Armed fault-injection plan, if any.
    fault: Option<FaultPlan>,
    /// Operations counted per [`FaultSite`] since the plan was armed.
    fault_counts: [u64; 3],
    /// Splitmix64 state driving [`FaultMode::Rate`] storms (seeded at arm).
    fault_rng: u64,
}

impl fmt::Debug for DeviceMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceMem")
            .field("capacity", &self.buf.len())
            .field("top", &self.top)
            .field("generation", &self.generation)
            .field("stats", &self.stats)
            .finish()
    }
}

impl DeviceMem {
    /// Creates an arena holding `capacity` `f32` elements.
    pub fn new(capacity: usize) -> Self {
        DeviceMem {
            buf: vec![0.0; capacity],
            top: 0,
            generation: 0,
            stats: MemStats::default(),
            fault: None,
            fault_counts: [0; 3],
            fault_rng: 0,
        }
    }

    /// Creates an arena with a byte capacity (rounded down to whole `f32`s).
    pub fn with_capacity_bytes(bytes: usize) -> Self {
        DeviceMem::new(bytes / std::mem::size_of::<f32>())
    }

    /// Elements currently allocated.
    pub fn used(&self) -> usize {
        self.top
    }

    /// Total capacity in elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Transfer/allocation statistics accumulated since construction (or the
    /// last [`DeviceMem::take_stats`]).
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Returns the accumulated statistics and zeroes the counters.
    pub fn take_stats(&mut self) -> MemStats {
        std::mem::take(&mut self.stats)
    }

    /// Releases all allocations.  Outstanding [`DeviceTensor`] handles become
    /// stale.  Statistics are preserved.
    pub fn reset(&mut self) {
        self.top = 0;
        self.generation += 1;
    }

    /// Arms deterministic fault injection: a one-shot plan fails its `nth`
    /// operation; a storm plan fails each operation with its seeded
    /// probability.  Site counters (and the storm stream) restart.
    pub fn arm_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
        self.fault_counts = [0; 3];
        self.fault_rng = match plan.mode {
            FaultMode::Nth(_) => 0,
            // Mix the seed so seed 0 does not start a degenerate stream.
            FaultMode::Rate { seed, .. } => seed ^ 0x9E3779B97F4A7C15,
        };
    }

    /// Disarms fault injection.
    pub fn clear_fault(&mut self) {
        self.fault = None;
    }

    /// The armed fault plan, if any.
    pub fn armed_fault(&self) -> Option<FaultPlan> {
        self.fault
    }

    /// Counts one operation at `site` against the armed fault plan and
    /// returns the injected error when it trips.  Upload and gather paths
    /// call this internally; kernel executors call it once per batched
    /// launch.  A no-op (and no counting) when nothing is armed.
    ///
    /// # Errors
    ///
    /// Returns the armed plan's error on the planned occurrence (one-shot)
    /// or on a seeded storm roll.
    pub fn trip_fault(&mut self, site: FaultSite) -> Result<()> {
        let Some(plan) = self.fault else { return Ok(()) };
        if plan.site != site {
            return Ok(());
        }
        let count = &mut self.fault_counts[site as usize];
        let occurrence = *count;
        *count += 1;
        let hit = match plan.mode {
            FaultMode::Nth(nth) => occurrence == nth,
            FaultMode::Rate { ppm, .. } => {
                // splitmix64 step: one roll per counted operation.
                self.fault_rng = self.fault_rng.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = self.fault_rng;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z % 1_000_000) < ppm as u64
            }
        };
        if !hit {
            return Ok(());
        }
        match plan.kind {
            FaultKind::Oom => Err(TensorError::DeviceOom {
                requested: self.buf.len() * std::mem::size_of::<f32>(),
                available: (self.buf.len() - self.top) * std::mem::size_of::<f32>(),
            }),
            FaultKind::Kernel => Err(TensorError::Injected { site, nth: occurrence }),
        }
    }

    /// Allocates an uninitialized (zeroed) tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DeviceOom`] when the arena is exhausted —
    /// allocation never grows the buffer, so memory-pressure experiments are
    /// reproducible.
    pub fn alloc(&mut self, shape: &Shape) -> Result<DeviceTensor> {
        let n = shape.numel();
        if self.top + n > self.buf.len() {
            return Err(TensorError::DeviceOom {
                requested: n * std::mem::size_of::<f32>(),
                available: (self.buf.len() - self.top) * std::mem::size_of::<f32>(),
            });
        }
        let offset = self.top;
        self.top += n;
        self.stats.peak_elements = self.stats.peak_elements.max(self.top as u64);
        self.buf[offset..offset + n].fill(0.0);
        Ok(DeviceTensor { offset, shape: shape.clone(), generation: self.generation })
    }

    fn check(&self, t: &DeviceTensor) -> Result<()> {
        if t.generation != self.generation {
            return Err(TensorError::StaleHandle);
        }
        debug_assert!(t.offset + t.numel() <= self.top);
        Ok(())
    }

    /// Copies a host tensor into the arena, counting one transfer operation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DeviceOom`] when the arena is exhausted.
    pub fn upload(&mut self, t: &Tensor) -> Result<DeviceTensor> {
        self.trip_fault(FaultSite::Upload)?;
        let dt = self.alloc(t.shape())?;
        self.buf[dt.offset..dt.offset + dt.numel()].copy_from_slice(t.data());
        self.stats.upload_bytes += t.shape().byte_size() as u64;
        self.stats.upload_ops += 1;
        Ok(dt)
    }

    /// Uploads several host tensors as one batched transfer (models the
    /// paper's batched CPU→GPU memcpys, §D.3: many tensors, one transfer op).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DeviceOom`] when the arena is exhausted.
    pub fn upload_batched(&mut self, tensors: &[&Tensor]) -> Result<Vec<DeviceTensor>> {
        if !tensors.is_empty() {
            self.trip_fault(FaultSite::Upload)?;
        }
        let mut out = Vec::with_capacity(tensors.len());
        for t in tensors {
            let dt = self.alloc(t.shape())?;
            self.buf[dt.offset..dt.offset + dt.numel()].copy_from_slice(t.data());
            self.stats.upload_bytes += t.shape().byte_size() as u64;
            out.push(dt);
        }
        if !tensors.is_empty() {
            self.stats.upload_ops += 1;
        }
        Ok(out)
    }

    /// Copies a device tensor back to the host.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::StaleHandle`] for handles from before a reset.
    pub fn download(&mut self, t: &DeviceTensor) -> Result<Tensor> {
        self.check(t)?;
        self.stats.download_bytes += t.shape().byte_size() as u64;
        Tensor::from_vec(self.buf[t.offset..t.offset + t.numel()].to_vec(), t.shape().dims())
    }

    /// Borrows the tensor's elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::StaleHandle`] for handles from before a reset.
    pub fn read(&self, t: &DeviceTensor) -> Result<&[f32]> {
        self.check(t)?;
        Ok(&self.buf[t.offset..t.offset + t.numel()])
    }

    /// Mutably borrows the tensor's elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::StaleHandle`] for handles from before a reset.
    pub fn write(&mut self, t: &DeviceTensor) -> Result<&mut [f32]> {
        self.check(t)?;
        Ok(&mut self.buf[t.offset..t.offset + t.numel()])
    }

    /// Splits the arena into the region below `at` (shared, read-only) and
    /// the region starting at `at` (exclusive).
    ///
    /// Kernel executors use this to read input tensors while writing freshly
    /// allocated outputs: bump allocation guarantees outputs sit above all
    /// previously allocated inputs.
    pub fn split_at_mut(&mut self, at: usize) -> (&[f32], &mut [f32]) {
        let (lo, hi) = self.buf.split_at_mut(at);
        (lo, hi)
    }

    /// A raw shared view of the whole arena for parallel kernel execution
    /// ([`ExecView`]).  All output regions must have been reserved (bump
    /// allocated) *before* taking the view — the view cannot allocate —
    /// and concurrent writers must target disjoint regions (see the
    /// [`ExecView`] contract).
    pub fn exec_view(&mut self) -> ExecView<'_> {
        ExecView {
            ptr: self.buf.as_mut_ptr(),
            len: self.buf.len(),
            _life: std::marker::PhantomData,
        }
    }

    pub(crate) fn make_handle(&self, offset: usize, shape: Shape) -> DeviceTensor {
        DeviceTensor { offset, shape, generation: self.generation }
    }

    /// Whether `tensors` form one contiguous ascending run of equal-shaped
    /// tensors (in which case an explicit gather can be skipped — exactly the
    /// "already contiguous in memory" case the paper describes in §7.3).
    pub fn is_contiguous_run(&self, tensors: &[&DeviceTensor]) -> bool {
        if tensors.is_empty() {
            return true;
        }
        let shape = tensors[0].shape();
        let n = shape.numel();
        let mut expect = tensors[0].offset;
        for t in tensors.iter() {
            if t.shape() != shape || t.offset != expect || t.generation != self.generation {
                return false;
            }
            expect += n;
        }
        true
    }

    /// Gathers `tensors` (equal shapes) into one contiguous allocation.
    ///
    /// If they already form a contiguous run, no copy happens and the result
    /// is a view; otherwise elements are copied and
    /// [`MemStats::gather_bytes`] is charged.  The boolean reports whether a
    /// copy was performed.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyBatch`] for an empty input,
    /// [`TensorError::BatchShape`] if shapes differ, and
    /// [`TensorError::DeviceOom`] if staging space cannot be allocated.
    pub fn gather(&mut self, tensors: &[&DeviceTensor]) -> Result<(DeviceTensor, bool)> {
        if tensors.is_empty() {
            return Err(TensorError::EmptyBatch);
        }
        self.trip_fault(FaultSite::Gather)?;
        let shape = tensors[0].shape().clone();
        for t in tensors.iter() {
            self.check(t)?;
            if t.shape() != &shape {
                return Err(TensorError::BatchShape {
                    op: "gather",
                    first: shape.clone(),
                    other: t.shape().clone(),
                });
            }
        }
        let n = shape.numel();
        let batched_shape = batched_shape(&shape, tensors.len());
        if self.is_contiguous_run(tensors) {
            self.stats.contiguous_hits += 1;
            return Ok((self.make_handle(tensors[0].offset, batched_shape), false));
        }
        let staging = self.alloc(&batched_shape)?;
        for (i, t) in tensors.iter().enumerate() {
            let (lo, hi) = self.buf.split_at_mut(staging.offset);
            hi[i * n..(i + 1) * n].copy_from_slice(&lo[t.offset..t.offset + n]);
        }
        self.stats.gather_bytes += (tensors.len() * shape.byte_size()) as u64;
        self.stats.gather_ops += 1;
        Ok((staging, true))
    }

    /// Splits a contiguous batched tensor into `batch` per-instance handles.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if the leading extent is not
    /// `batch`.
    pub fn scatter_views(&self, batched: &DeviceTensor, batch: usize) -> Result<Vec<DeviceTensor>> {
        self.check(batched)?;
        let dims = batched.shape().dims();
        if dims.is_empty() || !dims[0].is_multiple_of(batch) {
            return Err(TensorError::DataLength {
                got: dims.first().copied().unwrap_or(0),
                expected: batch,
            });
        }
        let inner = instance_shape(batched.shape(), batch);
        let n = inner.numel();
        Ok((0..batch).map(|i| self.make_handle(batched.offset + i * n, inner.clone())).collect())
    }
}

/// A thread-shareable raw view of a [`DeviceMem`] arena, used by the
/// parallel kernel executor to run independent batched launches of one
/// flush concurrently.
///
/// The view mutably borrows the arena for its lifetime (no allocation,
/// upload or reset can interleave), but deliberately bypasses Rust's
/// aliasing checks *within* the buffer so that multiple workers can write
/// their own output regions simultaneously.  Safety therefore rests on the
/// executor's output-reservation discipline:
///
/// * every region passed to [`ExecView::write`] was freshly bump-allocated
///   for exactly one work unit — output allocations never overlap, so
///   concurrent writes are disjoint by construction;
/// * every region passed to [`ExecView::read`] was fully written before
///   the parallel phase began (inputs of the current run were produced by
///   *earlier* runs or uploads — same-level batches never read each
///   other's outputs).
#[derive(Clone, Copy)]
pub struct ExecView<'a> {
    ptr: *mut f32,
    len: usize,
    _life: std::marker::PhantomData<&'a mut f32>,
}

// SAFETY: the view is only useful across threads, and the read/write
// contract above makes concurrent access race-free; `f32` has no drop or
// validity hazards.
unsafe impl Send for ExecView<'_> {}
unsafe impl Sync for ExecView<'_> {}

impl fmt::Debug for ExecView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecView").field("len", &self.len).finish()
    }
}

impl ExecView<'_> {
    /// Reads `len` elements at `offset`.
    ///
    /// # Safety
    ///
    /// The region must not be concurrently written (see the type-level
    /// contract: reads target data produced before the parallel phase).
    pub unsafe fn read(&self, offset: usize, len: usize) -> &[f32] {
        debug_assert!(offset + len <= self.len, "ExecView read out of bounds");
        unsafe { std::slice::from_raw_parts(self.ptr.add(offset), len) }
    }

    /// Mutably accesses `len` elements at `offset`.
    ///
    /// # Safety
    ///
    /// The region must be exclusively owned by the caller for the duration
    /// of the borrow (freshly reserved output, disjoint from every other
    /// work unit's outputs and from all concurrent reads).
    #[allow(clippy::mut_from_ref)] // aliasing is governed by the documented contract
    pub unsafe fn write(&self, offset: usize, len: usize) -> &mut [f32] {
        debug_assert!(offset + len <= self.len, "ExecView write out of bounds");
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(offset), len) }
    }
}

/// Shape of a batch of `batch` instances of `shape`, stacked on a new or
/// existing leading axis.
pub fn batched_shape(shape: &Shape, batch: usize) -> Shape {
    let mut dims = Vec::with_capacity(shape.rank() + 1);
    dims.push(batch);
    dims.extend_from_slice(shape.dims());
    Shape::from(dims)
}

/// Inverse of [`batched_shape`]: per-instance shape of a stacked batch.
pub fn instance_shape(batched: &Shape, batch: usize) -> Shape {
    let dims = batched.dims();
    debug_assert!(!dims.is_empty());
    if dims[0] == batch {
        Shape::new(&dims[1..])
    } else {
        // Leading axis folded multiple instances (e.g. concat): divide it.
        let mut out = dims.to_vec();
        out[0] /= batch;
        Shape::from(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_read_download_roundtrip() {
        let mut mem = DeviceMem::new(1024);
        let host = Tensor::from_fn(&[2, 3], |i| i as f32);
        let dev = mem.upload(&host).unwrap();
        assert_eq!(mem.read(&dev).unwrap(), host.data());
        let back = mem.download(&dev).unwrap();
        assert_eq!(back, host);
        assert_eq!(mem.stats().upload_bytes, 24);
        assert_eq!(mem.stats().download_bytes, 24);
        assert_eq!(mem.stats().upload_ops, 1);
    }

    #[test]
    fn batched_upload_counts_one_op() {
        let mut mem = DeviceMem::new(1024);
        let a = Tensor::ones(&[4]);
        let b = Tensor::zeros(&[4]);
        let handles = mem.upload_batched(&[&a, &b]).unwrap();
        assert_eq!(handles.len(), 2);
        assert_eq!(mem.stats().upload_ops, 1);
        assert_eq!(mem.stats().upload_bytes, 32);
    }

    #[test]
    fn oom_is_reported() {
        let mut mem = DeviceMem::new(4);
        assert!(mem.alloc(&Shape::new(&[4])).is_ok());
        let err = mem.alloc(&Shape::new(&[1])).unwrap_err();
        assert!(matches!(err, TensorError::DeviceOom { .. }));
    }

    #[test]
    fn reset_invalidates_handles() {
        let mut mem = DeviceMem::new(16);
        let t = mem.upload(&Tensor::ones(&[2])).unwrap();
        mem.reset();
        assert!(matches!(mem.read(&t), Err(TensorError::StaleHandle)));
        assert_eq!(mem.used(), 0);
        // New allocations work again.
        assert!(mem.alloc(&Shape::new(&[16])).is_ok());
    }

    #[test]
    fn contiguous_run_detection() {
        let mut mem = DeviceMem::new(64);
        let a = mem.upload(&Tensor::ones(&[4])).unwrap();
        let b = mem.upload(&Tensor::ones(&[4])).unwrap();
        let c = mem.upload(&Tensor::ones(&[4])).unwrap();
        assert!(mem.is_contiguous_run(&[&a, &b, &c]));
        assert!(!mem.is_contiguous_run(&[&a, &c]));
        assert!(!mem.is_contiguous_run(&[&b, &a]));
        let d = mem.upload(&Tensor::ones(&[2])).unwrap();
        assert!(!mem.is_contiguous_run(&[&c, &d]), "shape mismatch breaks the run");
    }

    #[test]
    fn gather_contiguous_skips_copy() {
        let mut mem = DeviceMem::new(64);
        let a = mem.upload(&Tensor::fill(&[2], 1.0)).unwrap();
        let b = mem.upload(&Tensor::fill(&[2], 2.0)).unwrap();
        let (g, copied) = mem.gather(&[&a, &b]).unwrap();
        assert!(!copied);
        assert_eq!(g.shape().dims(), &[2, 2]);
        assert_eq!(mem.read(&g).unwrap(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(mem.stats().gather_bytes, 0);
        assert_eq!(mem.stats().contiguous_hits, 1);
    }

    #[test]
    fn gather_scattered_copies() {
        let mut mem = DeviceMem::new(64);
        let a = mem.upload(&Tensor::fill(&[2], 1.0)).unwrap();
        let _gap = mem.upload(&Tensor::fill(&[3], 9.0)).unwrap();
        let b = mem.upload(&Tensor::fill(&[2], 2.0)).unwrap();
        let (g, copied) = mem.gather(&[&a, &b]).unwrap();
        assert!(copied);
        assert_eq!(mem.read(&g).unwrap(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(mem.stats().gather_bytes, 16);
        assert_eq!(mem.stats().gather_ops, 1);
    }

    #[test]
    fn gather_order_matters() {
        let mut mem = DeviceMem::new(64);
        let a = mem.upload(&Tensor::fill(&[1], 1.0)).unwrap();
        let b = mem.upload(&Tensor::fill(&[1], 2.0)).unwrap();
        // Reversed order is NOT a contiguous run and must copy.
        let (g, copied) = mem.gather(&[&b, &a]).unwrap();
        assert!(copied);
        assert_eq!(mem.read(&g).unwrap(), &[2.0, 1.0]);
    }

    #[test]
    fn gather_rejects_mixed_shapes_and_empty() {
        let mut mem = DeviceMem::new(64);
        let a = mem.upload(&Tensor::ones(&[2])).unwrap();
        let b = mem.upload(&Tensor::ones(&[3])).unwrap();
        assert!(matches!(mem.gather(&[&a, &b]), Err(TensorError::BatchShape { .. })));
        assert!(matches!(mem.gather(&[]), Err(TensorError::EmptyBatch)));
    }

    #[test]
    fn scatter_views_partition() {
        let mut mem = DeviceMem::new(64);
        let batched = mem.upload(&Tensor::from_fn(&[3, 2], |i| i as f32)).unwrap();
        let views = mem.scatter_views(&batched, 3).unwrap();
        assert_eq!(views.len(), 3);
        assert_eq!(mem.read(&views[1]).unwrap(), &[2.0, 3.0]);
        assert_eq!(views[2].shape().dims(), &[2]);
    }

    #[test]
    fn reshaped_view_is_zero_cost() {
        let mut mem = DeviceMem::new(64);
        let t = mem.upload(&Tensor::from_fn(&[2, 3], |i| i as f32)).unwrap();
        let v = t.reshaped(&Shape::new(&[3, 2])).unwrap();
        assert_eq!(v.offset(), t.offset());
        assert_eq!(mem.read(&v).unwrap(), mem.read(&t).unwrap());
        assert!(t.reshaped(&Shape::new(&[4])).is_err());
    }

    #[test]
    fn peak_tracking() {
        let mut mem = DeviceMem::new(64);
        mem.alloc(&Shape::new(&[10])).unwrap();
        mem.reset();
        mem.alloc(&Shape::new(&[5])).unwrap();
        assert_eq!(mem.stats().peak_elements, 10);
    }

    #[test]
    fn fault_plan_parse() {
        assert_eq!(
            FaultPlan::parse("launch:3:oom"),
            Ok(FaultPlan::nth(FaultSite::Launch, 3, FaultKind::Oom))
        );
        assert_eq!(
            FaultPlan::parse("gather:0:kernel"),
            Ok(FaultPlan::nth(FaultSite::Gather, 0, FaultKind::Kernel))
        );
        assert!(FaultPlan::parse("launch:3").is_err());
        assert!(FaultPlan::parse("disk:1:oom").is_err());
        assert!(FaultPlan::parse("launch:x:oom").is_err());
        assert!(FaultPlan::parse("launch:1:panic").is_err());
    }

    #[test]
    fn fault_plan_parse_rate() {
        assert_eq!(
            FaultPlan::parse("launch:rate=0.01:kernel"),
            Ok(FaultPlan::storm(FaultSite::Launch, 10_000, 0, FaultKind::Kernel))
        );
        assert_eq!(
            FaultPlan::parse("upload:rate=1%@42:oom"),
            Ok(FaultPlan::storm(FaultSite::Upload, 10_000, 42, FaultKind::Oom))
        );
        assert_eq!(
            FaultPlan::parse("gather:rate=0.001@7:kernel"),
            Ok(FaultPlan::storm(FaultSite::Gather, 1_000, 7, FaultKind::Kernel))
        );
        assert!(FaultPlan::parse("launch:rate=2:kernel").is_err(), "p > 1 rejected");
        assert!(FaultPlan::parse("launch:rate=-0.1:kernel").is_err());
        assert!(FaultPlan::parse("launch:rate=x:kernel").is_err());
        assert!(FaultPlan::parse("launch:rate=0.5@x:kernel").is_err());
    }

    #[test]
    fn fault_storm_is_seed_deterministic_and_roughly_calibrated() {
        let storm_hits = |seed: u64, ppm: u32, trials: u32| -> Vec<u32> {
            let mut mem = DeviceMem::new(16);
            mem.arm_fault(FaultPlan::storm(FaultSite::Launch, ppm, seed, FaultKind::Kernel));
            (0..trials).filter(|_| mem.trip_fault(FaultSite::Launch).is_err()).collect()
        };
        // Same seed → identical hit sequence; different seed → different one.
        let a = storm_hits(1, 200_000, 500);
        assert_eq!(a, storm_hits(1, 200_000, 500));
        assert_ne!(a, storm_hits(2, 200_000, 500));
        // 20% nominal rate over 500 trials lands in a generous band.
        assert!((50..=150).contains(&(a.len() as u32)), "got {} hits", a.len());
        // Rate 0 never fires; rate 1.0 always fires.
        assert!(storm_hits(3, 0, 100).is_empty());
        assert_eq!(storm_hits(3, 1_000_000, 100).len(), 100);
    }

    #[test]
    fn fault_trips_exactly_once_at_the_planned_site() {
        let mut mem = DeviceMem::new(1024);
        mem.arm_fault(FaultPlan::parse("upload:1:kernel").unwrap());
        let t = Tensor::ones(&[2]);
        assert!(mem.upload(&t).is_ok(), "occurrence 0 passes");
        let err = mem.upload(&t).unwrap_err();
        assert_eq!(err, TensorError::Injected { site: FaultSite::Upload, nth: 1 });
        assert!(mem.upload(&t).is_ok(), "plan fires at most once");
        // Other sites are never affected.
        let a = mem.upload(&t).unwrap();
        let _pad = mem.alloc(&Shape::new(&[3])).unwrap();
        let b = mem.upload(&t).unwrap();
        assert!(mem.gather(&[&a, &b]).is_ok());
        mem.clear_fault();
        assert!(mem.upload(&t).is_ok());
    }

    #[test]
    fn injected_oom_reports_oom() {
        let mut mem = DeviceMem::new(1024);
        mem.arm_fault(FaultPlan::nth(FaultSite::Gather, 0, FaultKind::Oom));
        let a = mem.upload(&Tensor::ones(&[2])).unwrap();
        let _pad = mem.alloc(&Shape::new(&[3])).unwrap();
        let b = mem.upload(&Tensor::ones(&[2])).unwrap();
        assert!(matches!(mem.gather(&[&a, &b]), Err(TensorError::DeviceOom { .. })));
        // Spent plan: the next gather succeeds and the arena still works.
        let (g, copied) = mem.gather(&[&a, &b]).unwrap();
        assert!(copied);
        assert_eq!(mem.read(&g).unwrap(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn exec_view_disjoint_parallel_writes() {
        let mut mem = DeviceMem::new(64);
        let src = mem.upload(&Tensor::from_fn(&[8], |i| i as f32)).unwrap();
        let a = mem.alloc(&Shape::new(&[4])).unwrap();
        let b = mem.alloc(&Shape::new(&[4])).unwrap();
        let view = mem.exec_view();
        std::thread::scope(|s| {
            for (dst, half) in [(&a, 0usize), (&b, 4)] {
                let src = &src;
                s.spawn(move || {
                    // SAFETY: `src` was written before the view was taken;
                    // `a`/`b` are disjoint fresh allocations, one per thread.
                    let input = unsafe { view.read(src.offset() + half, 4) };
                    let out = unsafe { view.write(dst.offset(), 4) };
                    for (o, i) in out.iter_mut().zip(input) {
                        *o = i * 2.0;
                    }
                });
            }
        });
        assert_eq!(mem.read(&a).unwrap(), &[0.0, 2.0, 4.0, 6.0]);
        assert_eq!(mem.read(&b).unwrap(), &[8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn batched_instance_shape_roundtrip() {
        let s = Shape::new(&[1, 8]);
        let b = batched_shape(&s, 4);
        assert_eq!(b.dims(), &[4, 1, 8]);
        assert_eq!(instance_shape(&b, 4), s);
    }
}
