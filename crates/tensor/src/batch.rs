//! Batched kernel execution.
//!
//! A *batched kernel* executes one [`PrimOp`] for `B` dataflow-graph nodes in
//! a single launch.  Each kernel argument is either **shared** (the same
//! device tensor for every instance — typically a model parameter, as
//! identified by ACROBAT's taint analysis, §5.1) or **batched** (one device
//! tensor per instance).
//!
//! Batched arguments can be consumed in two ways, which is the heart of the
//! paper's §5.2 comparison:
//!
//! * [`BatchMode::ExplicitGather`] — DyNet-style: scattered operands are
//!   first copied into a contiguous staging buffer (charging
//!   [`crate::MemStats::gather_bytes`]) and the kernel then reads densely.
//!   When operands already form a contiguous run the copy is skipped, exactly
//!   as the paper notes for iterative models in §7.3.
//! * [`BatchMode::GatherFused`] — ACROBAT-style: the kernel reads each
//!   instance through an offset table (indirect accesses, no copy).  The
//!   extra indirection is charged by the accelerator cost model in
//!   `acrobat-runtime`, not here.
//!
//! Both modes produce bit-identical results; property tests in
//! `tests/batch_equivalence.rs` enforce this.

use crate::arena::batched_shape;
use crate::ops::{self, RawInput};
use crate::{DeviceMem, DeviceTensor, PrimOp, Result, Shape, TensorError};

/// How batched arguments are accessed by a batched kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchMode {
    /// Copy scattered operands into contiguous staging first (DyNet-style).
    ExplicitGather,
    /// Read scattered operands in place through an offset table
    /// (ACROBAT-style gather-operator fusion).
    GatherFused,
}

/// One argument of a batched kernel call.
#[derive(Debug, Clone)]
pub enum BatchArg {
    /// The same tensor for every instance in the batch.
    Shared(DeviceTensor),
    /// One tensor per instance (`len == batch`).
    Batched(Vec<DeviceTensor>),
}

/// Cost-relevant observations from one batched kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Kernel launches performed (always 1 for a batched call).
    pub launches: u64,
    /// Bytes moved by explicit gathers in this call.
    pub gather_bytes: u64,
    /// Explicit gather copies performed.
    pub gather_copies: u64,
    /// Gathers skipped because operands were contiguous.
    pub contiguous_hits: u64,
    /// Operand instances read through the indirection table (gather-fused
    /// scattered reads; drives the indirection term of the cost model).
    pub indirect_reads: u64,
}

impl BatchStats {
    /// Accumulates another launch's statistics into this one.
    pub fn merge(&mut self, other: &BatchStats) {
        self.launches += other.launches;
        self.gather_bytes += other.gather_bytes;
        self.gather_copies += other.gather_copies;
        self.contiguous_hits += other.contiguous_hits;
        self.indirect_reads += other.indirect_reads;
    }
}

/// Executes `op` once, unbatched, on device tensors.
///
/// The sequential baselines (PyTorch-style eager execution, and DyNet's
/// fallback for operators its vendor libraries cannot batch) use this path.
///
/// # Errors
///
/// Propagates shape inference, arena and kernel errors.
pub fn run_prim(
    mem: &mut DeviceMem,
    op: &PrimOp,
    inputs: &[&DeviceTensor],
) -> Result<DeviceTensor> {
    let shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
    let out_shape = ops::infer_shape(op, &shapes)?;
    // Reshape/copy-free view when possible.
    if matches!(op, PrimOp::Reshape { .. }) {
        return inputs[0].reshaped(&out_shape);
    }
    let out = mem.alloc(&out_shape)?;
    let (lo, hi) = mem.split_at_mut(out.offset());
    let raw: Vec<RawInput<'_>> =
        inputs.iter().map(|t| (&lo[t.offset()..t.offset() + t.numel()], t.shape())).collect();
    ops::execute_raw(op, &raw, &mut hi[..out_shape.numel()])?;
    Ok(out)
}

/// Executes a batched kernel launch: `op` applied to `batch` instances.
///
/// Returns the per-instance output handles (views into one contiguous output
/// allocation — downstream batches over these outputs hit the contiguous
/// fast path) and the launch statistics.
///
/// # Errors
///
/// Returns [`TensorError::EmptyBatch`] for `batch == 0`,
/// [`TensorError::BatchShape`] when instances disagree on shapes, plus any
/// shape-inference, arena or kernel error.
pub fn run_batched_prim(
    mem: &mut DeviceMem,
    op: &PrimOp,
    args: &[BatchArg],
    batch: usize,
    mode: BatchMode,
) -> Result<(Vec<DeviceTensor>, BatchStats)> {
    if batch == 0 {
        return Err(TensorError::EmptyBatch);
    }
    let mut stats = BatchStats { launches: 1, ..BatchStats::default() };

    // Validate batched args and determine per-instance input shapes.
    let mut instance_shapes: Vec<Shape> = Vec::with_capacity(args.len());
    for arg in args {
        match arg {
            BatchArg::Shared(t) => instance_shapes.push(t.shape().clone()),
            BatchArg::Batched(ts) => {
                if ts.len() != batch {
                    return Err(TensorError::Arity {
                        op: op.name(),
                        got: ts.len(),
                        expected: batch,
                    });
                }
                let first = ts[0].shape().clone();
                for t in ts {
                    if t.shape() != &first {
                        return Err(TensorError::BatchShape {
                            op: op.name(),
                            first,
                            other: t.shape().clone(),
                        });
                    }
                }
                instance_shapes.push(first);
            }
        }
    }
    let shape_refs: Vec<&Shape> = instance_shapes.iter().collect();
    let out_shape = ops::infer_shape(op, &shape_refs)?;
    let out_numel = out_shape.numel();

    // Resolve each argument to a per-instance offset table.
    enum Resolved {
        Shared(DeviceTensor),
        Offsets(Vec<usize>, Shape),
    }
    let mut resolved: Vec<Resolved> = Vec::with_capacity(args.len());
    for arg in args {
        match arg {
            BatchArg::Shared(t) => resolved.push(Resolved::Shared(t.clone())),
            BatchArg::Batched(ts) => {
                let shape = ts[0].shape().clone();
                match mode {
                    BatchMode::GatherFused => {
                        stats.indirect_reads += ts.len() as u64;
                        resolved.push(Resolved::Offsets(
                            ts.iter().map(|t| t.offset()).collect(),
                            shape,
                        ));
                    }
                    BatchMode::ExplicitGather => {
                        let before = mem.stats();
                        let refs: Vec<&DeviceTensor> = ts.iter().collect();
                        let (staging, copied) = mem.gather(&refs)?;
                        let after = mem.stats();
                        if copied {
                            stats.gather_bytes += after.gather_bytes - before.gather_bytes;
                            stats.gather_copies += 1;
                        } else {
                            stats.contiguous_hits += 1;
                        }
                        let n = shape.numel();
                        resolved.push(Resolved::Offsets(
                            (0..batch).map(|i| staging.offset() + i * n).collect(),
                            shape,
                        ));
                    }
                }
            }
        }
    }

    // Allocate one contiguous output for the whole batch (this is what makes
    // consumers of this kernel see contiguous operands).
    let out_batched = mem.alloc(&batched_shape(&out_shape, batch))?;
    let out_base = out_batched.offset();
    let (lo, hi) = mem.split_at_mut(out_base);
    for b in 0..batch {
        let raw: Vec<RawInput<'_>> = resolved
            .iter()
            .map(|r| match r {
                Resolved::Shared(t) => (&lo[t.offset()..t.offset() + t.numel()], t.shape()),
                Resolved::Offsets(offs, shape) => (&lo[offs[b]..offs[b] + shape.numel()], shape),
            })
            .collect();
        ops::execute_raw(op, &raw, &mut hi[b * out_numel..(b + 1) * out_numel])?;
    }

    let outs =
        (0..batch).map(|b| mem.make_handle(out_base + b * out_numel, out_shape.clone())).collect();
    Ok((outs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn setup() -> (DeviceMem, DeviceTensor, Vec<DeviceTensor>) {
        let mut mem = DeviceMem::new(4096);
        let w = mem.upload(&Tensor::from_fn(&[2, 2], |i| (i + 1) as f32)).unwrap();
        // Interleave pads so the xs are NOT contiguous.
        let mut xs = Vec::new();
        for b in 0..3 {
            let x = mem.upload(&Tensor::fill(&[1, 2], b as f32 + 1.0)).unwrap();
            let _pad = mem.alloc(&Shape::new(&[3])).unwrap();
            xs.push(x);
        }
        (mem, w, xs)
    }

    #[test]
    fn run_prim_matches_host_execute() {
        let mut mem = DeviceMem::new(256);
        let a = Tensor::from_fn(&[2, 3], |i| i as f32);
        let b = Tensor::fill(&[2, 3], 2.0);
        let da = mem.upload(&a).unwrap();
        let db = mem.upload(&b).unwrap();
        let out = run_prim(&mut mem, &PrimOp::Mul, &[&da, &db]).unwrap();
        let host = crate::execute(&PrimOp::Mul, &[&a, &b]).unwrap();
        assert_eq!(mem.read(&out).unwrap(), host.data());
    }

    #[test]
    fn run_prim_reshape_is_view() {
        let mut mem = DeviceMem::new(256);
        let t = mem.upload(&Tensor::from_fn(&[2, 3], |i| i as f32)).unwrap();
        let used = mem.used();
        let r = run_prim(&mut mem, &PrimOp::Reshape { shape: Shape::new(&[3, 2]) }, &[&t]).unwrap();
        assert_eq!(mem.used(), used, "reshape allocates nothing");
        assert_eq!(r.offset(), t.offset());
    }

    #[test]
    fn fused_and_gathered_agree() {
        let (mut mem, w, xs) = setup();
        let args = vec![BatchArg::Batched(xs.clone()), BatchArg::Shared(w.clone())];
        let (fused, fstats) =
            run_batched_prim(&mut mem, &PrimOp::MatMul, &args, 3, BatchMode::GatherFused).unwrap();
        let (gathered, gstats) =
            run_batched_prim(&mut mem, &PrimOp::MatMul, &args, 3, BatchMode::ExplicitGather)
                .unwrap();
        for (f, g) in fused.iter().zip(&gathered) {
            assert_eq!(mem.read(f).unwrap(), mem.read(g).unwrap());
        }
        assert_eq!(fstats.gather_bytes, 0);
        assert_eq!(fstats.indirect_reads, 3);
        assert!(gstats.gather_bytes > 0, "scattered operands must be copied");
        assert_eq!(gstats.gather_copies, 1);
    }

    #[test]
    fn batched_matches_sequential_unbatched() {
        let (mut mem, w, xs) = setup();
        let args = vec![BatchArg::Batched(xs.clone()), BatchArg::Shared(w.clone())];
        let (batched, _) =
            run_batched_prim(&mut mem, &PrimOp::MatMul, &args, 3, BatchMode::GatherFused).unwrap();
        for (x, b) in xs.iter().zip(&batched) {
            let seq = run_prim(&mut mem, &PrimOp::MatMul, &[x, &w]).unwrap();
            assert_eq!(mem.read(&seq).unwrap(), mem.read(b).unwrap());
        }
    }

    #[test]
    fn outputs_are_contiguous() {
        let (mut mem, w, xs) = setup();
        let args = vec![BatchArg::Batched(xs), BatchArg::Shared(w)];
        let (outs, _) =
            run_batched_prim(&mut mem, &PrimOp::MatMul, &args, 3, BatchMode::GatherFused).unwrap();
        let refs: Vec<&DeviceTensor> = outs.iter().collect();
        assert!(mem.is_contiguous_run(&refs));
        // A downstream explicit-gather launch over these outputs skips the copy.
        let args2 = vec![BatchArg::Batched(outs)];
        let (_, stats2) =
            run_batched_prim(&mut mem, &PrimOp::Relu, &args2, 3, BatchMode::ExplicitGather)
                .unwrap();
        assert_eq!(stats2.gather_copies, 0);
        assert_eq!(stats2.contiguous_hits, 1);
    }

    #[test]
    fn batch_size_mismatch_rejected() {
        let (mut mem, w, xs) = setup();
        let args = vec![BatchArg::Batched(xs), BatchArg::Shared(w)];
        assert!(
            run_batched_prim(&mut mem, &PrimOp::MatMul, &args, 2, BatchMode::GatherFused).is_err()
        );
        assert!(matches!(
            run_batched_prim(&mut mem, &PrimOp::MatMul, &args, 0, BatchMode::GatherFused),
            Err(TensorError::EmptyBatch)
        ));
    }

    #[test]
    fn mixed_instance_shapes_rejected() {
        let mut mem = DeviceMem::new(256);
        let a = mem.upload(&Tensor::ones(&[2])).unwrap();
        let b = mem.upload(&Tensor::ones(&[3])).unwrap();
        let args = vec![BatchArg::Batched(vec![a, b])];
        assert!(matches!(
            run_batched_prim(&mut mem, &PrimOp::Relu, &args, 2, BatchMode::GatherFused),
            Err(TensorError::BatchShape { .. })
        ));
    }

    #[test]
    fn zero_input_fill_batches() {
        let mut mem = DeviceMem::new(256);
        let op = PrimOp::Fill { value: 7.0, shape: Shape::new(&[1, 3]) };
        let (outs, stats) =
            run_batched_prim(&mut mem, &op, &[], 4, BatchMode::GatherFused).unwrap();
        assert_eq!(outs.len(), 4);
        assert_eq!(stats.launches, 1);
        for o in &outs {
            assert_eq!(mem.read(o).unwrap(), &[7.0; 3]);
        }
    }

    #[test]
    fn stats_merge() {
        let mut a = BatchStats { launches: 1, gather_bytes: 16, ..Default::default() };
        let b = BatchStats { launches: 2, indirect_reads: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.launches, 3);
        assert_eq!(a.gather_bytes, 16);
        assert_eq!(a.indirect_reads, 5);
    }
}
