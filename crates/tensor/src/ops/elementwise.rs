//! Unary and binary elementwise kernels with lightweight broadcasting.

use super::RawInput;
use crate::Result;

/// Applies `f` to every element of the input.
pub(crate) fn unary(input: RawInput<'_>, out: &mut [f32], f: impl Fn(f32) -> f32) -> Result<()> {
    debug_assert_eq!(input.0.len(), out.len());
    for (o, &x) in out.iter_mut().zip(input.0) {
        *o = f(x);
    }
    Ok(())
}

/// Applies `f` pairwise, broadcasting either operand per
/// [`crate::Shape::broadcast`].
pub(crate) fn binary(
    lhs: RawInput<'_>,
    rhs: RawInput<'_>,
    out: &mut [f32],
    f: impl Fn(f32, f32) -> f32,
) -> Result<()> {
    let out_shape = lhs.1.broadcast(rhs.1)?;
    debug_assert_eq!(out.len(), out_shape.numel());
    let lmap = lhs.1.broadcast_index(&out_shape);
    let rmap = rhs.1.broadcast_index(&out_shape);
    // Fast path: both operands already have the output shape.
    if lhs.0.len() == out.len() && rhs.0.len() == out.len() {
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(lhs.0[i], rhs.0[i]);
        }
        return Ok(());
    }
    for (i, o) in out.iter_mut().enumerate() {
        *o = f(lhs.0[lmap.map(i)], rhs.0[rmap.map(i)]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{execute, PrimOp, Tensor};

    #[test]
    fn unary_ops() {
        let x = Tensor::from_vec(vec![-2.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(execute(&PrimOp::Relu, &[&x]).unwrap().data(), &[0.0, 0.0, 2.0]);
        assert_eq!(execute(&PrimOp::Neg, &[&x]).unwrap().data(), &[2.0, 0.0, -2.0]);
        let s = execute(&PrimOp::Sigmoid, &[&x]).unwrap();
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[0] < 0.5 && s.data()[2] > 0.5);
        let t = execute(&PrimOp::Tanh, &[&x]).unwrap();
        assert!((t.data()[2] - (2.0f32).tanh()).abs() < 1e-6);
    }

    #[test]
    fn binary_same_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 3.0, 2.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(execute(&PrimOp::Add, &[&a, &b]).unwrap().data(), &[5.0; 4]);
        assert_eq!(execute(&PrimOp::Sub, &[&a, &b]).unwrap().data(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(execute(&PrimOp::Mul, &[&a, &b]).unwrap().data(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(execute(&PrimOp::Maximum, &[&a, &b]).unwrap().data(), &[4.0, 3.0, 3.0, 4.0]);
    }

    #[test]
    fn binary_row_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let bias = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]).unwrap();
        let out = execute(&PrimOp::Add, &[&a, &bias]).unwrap();
        assert_eq!(out.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        // Broadcast is symmetric.
        let out2 = execute(&PrimOp::Add, &[&bias, &a]).unwrap();
        assert_eq!(out.data(), out2.data());
    }

    #[test]
    fn binary_col_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let col = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        let out = execute(&PrimOp::Mul, &[&a, &col]).unwrap();
        assert_eq!(out.data(), &[1.0, 2.0, 3.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    fn binary_scalar_broadcast() {
        let a = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        let s = Tensor::scalar(2.0);
        assert_eq!(execute(&PrimOp::Div, &[&a, &s]).unwrap().data(), &[1.0, 2.0]);
        assert_eq!(execute(&PrimOp::Div, &[&s, &a]).unwrap().data(), &[1.0, 0.5]);
    }

    #[test]
    fn binary_shape_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(execute(&PrimOp::Add, &[&a, &b]).is_err());
    }
}
