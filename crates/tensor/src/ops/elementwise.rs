//! Unary and binary elementwise kernels with lightweight broadcasting.

use super::RawInput;
use crate::Result;

/// Scalar semantics of a unary elementwise operator.
///
/// This is the single source of truth for the per-element function: the
/// reference interpreter ([`crate::execute_slices`]) and any specialized
/// execution path both bottom out in [`UnaryKind::apply`], so bit-for-bit
/// agreement between them is by construction, not by coincidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryKind {
    /// `max(x, 0)`.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Negation.
    Neg,
    /// Square root.
    Sqrt,
    /// GELU (tanh approximation).
    Gelu,
}

impl UnaryKind {
    /// The per-element function.
    #[inline(always)]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnaryKind::Relu => x.max(0.0),
            UnaryKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryKind::Tanh => x.tanh(),
            UnaryKind::Exp => x.exp(),
            UnaryKind::Log => x.ln(),
            UnaryKind::Neg => -x,
            UnaryKind::Sqrt => x.sqrt(),
            UnaryKind::Gelu => super::nn::gelu_scalar(x),
        }
    }
}

/// Scalar semantics of a binary elementwise operator (see [`UnaryKind`] for
/// the identity argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryKind {
    /// `a + b`.
    Add,
    /// `a - b`.
    Sub,
    /// `a * b`.
    Mul,
    /// `a / b`.
    Div,
    /// `max(a, b)`.
    Maximum,
}

impl BinaryKind {
    /// The per-element function.
    #[inline(always)]
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryKind::Add => a + b,
            BinaryKind::Sub => a - b,
            BinaryKind::Mul => a * b,
            BinaryKind::Div => a / b,
            BinaryKind::Maximum => a.max(b),
        }
    }
}

/// Slice-level unary kernel: `out[i] = kind.apply(input[i])`, with a
/// `chunks_exact` main loop the optimizer can unroll and vectorize.  Both
/// slices must have the same length.
pub fn map_unary(kind: UnaryKind, input: &[f32], out: &mut [f32]) {
    debug_assert_eq!(input.len(), out.len());
    const W: usize = 8;
    let main = input.len() - input.len() % W;
    for (oc, ic) in out[..main].chunks_exact_mut(W).zip(input[..main].chunks_exact(W)) {
        for (o, &x) in oc.iter_mut().zip(ic) {
            *o = kind.apply(x);
        }
    }
    for (o, &x) in out[main..].iter_mut().zip(&input[main..]) {
        *o = kind.apply(x);
    }
}

/// Slice-level binary kernel: `out[i] = kind.apply(lhs[i], rhs[i])`.  No
/// broadcasting — all three slices must have the same length (callers that
/// need broadcast go through [`binary`]).
pub fn map_binary(kind: BinaryKind, lhs: &[f32], rhs: &[f32], out: &mut [f32]) {
    debug_assert_eq!(lhs.len(), out.len());
    debug_assert_eq!(rhs.len(), out.len());
    const W: usize = 8;
    let main = out.len() - out.len() % W;
    for ((oc, lc), rc) in out[..main]
        .chunks_exact_mut(W)
        .zip(lhs[..main].chunks_exact(W))
        .zip(rhs[..main].chunks_exact(W))
    {
        for ((o, &a), &b) in oc.iter_mut().zip(lc).zip(rc) {
            *o = kind.apply(a, b);
        }
    }
    for ((o, &a), &b) in out[main..].iter_mut().zip(&lhs[main..]).zip(&rhs[main..]) {
        *o = kind.apply(a, b);
    }
}

/// Applies `f` to every element of the input.
pub(crate) fn unary(input: RawInput<'_>, out: &mut [f32], f: impl Fn(f32) -> f32) -> Result<()> {
    debug_assert_eq!(input.0.len(), out.len());
    for (o, &x) in out.iter_mut().zip(input.0) {
        *o = f(x);
    }
    Ok(())
}

/// Applies `f` pairwise, broadcasting either operand per
/// [`crate::Shape::broadcast`].
pub(crate) fn binary(
    lhs: RawInput<'_>,
    rhs: RawInput<'_>,
    out: &mut [f32],
    f: impl Fn(f32, f32) -> f32,
) -> Result<()> {
    let out_shape = lhs.1.broadcast(rhs.1)?;
    debug_assert_eq!(out.len(), out_shape.numel());
    let lmap = lhs.1.broadcast_index(&out_shape);
    let rmap = rhs.1.broadcast_index(&out_shape);
    // Fast path: both operands already have the output shape.
    if lhs.0.len() == out.len() && rhs.0.len() == out.len() {
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(lhs.0[i], rhs.0[i]);
        }
        return Ok(());
    }
    for (i, o) in out.iter_mut().enumerate() {
        *o = f(lhs.0[lmap.map(i)], rhs.0[rmap.map(i)]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{execute, PrimOp, Tensor};

    #[test]
    fn unary_ops() {
        let x = Tensor::from_vec(vec![-2.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(execute(&PrimOp::Relu, &[&x]).unwrap().data(), &[0.0, 0.0, 2.0]);
        assert_eq!(execute(&PrimOp::Neg, &[&x]).unwrap().data(), &[2.0, 0.0, -2.0]);
        let s = execute(&PrimOp::Sigmoid, &[&x]).unwrap();
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[0] < 0.5 && s.data()[2] > 0.5);
        let t = execute(&PrimOp::Tanh, &[&x]).unwrap();
        assert!((t.data()[2] - (2.0f32).tanh()).abs() < 1e-6);
    }

    #[test]
    fn binary_same_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 3.0, 2.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(execute(&PrimOp::Add, &[&a, &b]).unwrap().data(), &[5.0; 4]);
        assert_eq!(execute(&PrimOp::Sub, &[&a, &b]).unwrap().data(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(execute(&PrimOp::Mul, &[&a, &b]).unwrap().data(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(execute(&PrimOp::Maximum, &[&a, &b]).unwrap().data(), &[4.0, 3.0, 3.0, 4.0]);
    }

    #[test]
    fn binary_row_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let bias = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]).unwrap();
        let out = execute(&PrimOp::Add, &[&a, &bias]).unwrap();
        assert_eq!(out.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        // Broadcast is symmetric.
        let out2 = execute(&PrimOp::Add, &[&bias, &a]).unwrap();
        assert_eq!(out.data(), out2.data());
    }

    #[test]
    fn binary_col_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let col = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        let out = execute(&PrimOp::Mul, &[&a, &col]).unwrap();
        assert_eq!(out.data(), &[1.0, 2.0, 3.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    fn binary_scalar_broadcast() {
        let a = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        let s = Tensor::scalar(2.0);
        assert_eq!(execute(&PrimOp::Div, &[&a, &s]).unwrap().data(), &[1.0, 2.0]);
        assert_eq!(execute(&PrimOp::Div, &[&s, &a]).unwrap().data(), &[1.0, 0.5]);
    }

    #[test]
    fn binary_shape_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(execute(&PrimOp::Add, &[&a, &b]).is_err());
    }

    #[test]
    fn map_kernels_match_reference_bits() {
        use super::{map_binary, map_unary, BinaryKind, UnaryKind};
        // Lengths around the chunk width exercise main loop + remainder.
        for n in [0usize, 1, 7, 8, 9, 16, 29] {
            let xs: Vec<f32> = (0..n).map(|i| (i as f32 - 3.5) * 0.7).collect();
            let ys: Vec<f32> = (0..n).map(|i| (i as f32 + 0.5) * -0.3).collect();
            for kind in [
                UnaryKind::Relu,
                UnaryKind::Sigmoid,
                UnaryKind::Tanh,
                UnaryKind::Exp,
                UnaryKind::Log,
                UnaryKind::Neg,
                UnaryKind::Sqrt,
                UnaryKind::Gelu,
            ] {
                let mut a = vec![0.0f32; n];
                let mut b = vec![0.0f32; n];
                map_unary(kind, &xs, &mut a);
                let shape = crate::Shape::new(&[n]);
                super::super::elementwise::unary((&xs, &shape), &mut b, |x| kind.apply(x)).unwrap();
                assert!(a.iter().zip(&b).all(|(p, q)| p.to_bits() == q.to_bits()), "{kind:?}");
            }
            for kind in [
                BinaryKind::Add,
                BinaryKind::Sub,
                BinaryKind::Mul,
                BinaryKind::Div,
                BinaryKind::Maximum,
            ] {
                let mut a = vec![0.0f32; n];
                map_binary(kind, &xs, &ys, &mut a);
                let expect: Vec<f32> =
                    xs.iter().zip(&ys).map(|(&x, &y)| kind.apply(x, y)).collect();
                assert!(a.iter().zip(&expect).all(|(p, q)| p.to_bits() == q.to_bits()), "{kind:?}");
            }
        }
    }
}
