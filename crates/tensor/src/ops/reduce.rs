//! Row-wise reduction kernels (reduce the last axis).

use super::RawInput;
use crate::{Result, Shape};

/// Shape rule: drop the last axis; scalars and vectors reduce to scalars.
pub(crate) fn infer(input: &Shape) -> Result<Shape> {
    let dims = input.dims();
    match dims.split_last() {
        Some((_, lead)) => Ok(Shape::new(lead)),
        None => Ok(Shape::scalar()),
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Reduction {
    Sum,
    Mean,
    Max,
    Argmax,
}

pub(crate) fn reduce(input: RawInput<'_>, out: &mut [f32], red: Reduction) -> Result<()> {
    let n = input.1.last_dim().max(1);
    let rows = input.1.rows();
    debug_assert_eq!(out.len(), rows);
    for (r, slot) in out.iter_mut().enumerate().take(rows) {
        let row = &input.0[r * n..(r + 1) * n];
        *slot = match red {
            Reduction::Sum => row.iter().sum(),
            Reduction::Mean => row.iter().sum::<f32>() / n as f32,
            Reduction::Max => row.iter().copied().fold(f32::NEG_INFINITY, f32::max),
            Reduction::Argmax => {
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best as f32
            }
        };
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{execute, PrimOp, Shape, Tensor};

    #[test]
    fn infer_drops_last_axis() {
        assert_eq!(super::infer(&Shape::new(&[2, 3])).unwrap(), Shape::new(&[2]));
        assert_eq!(super::infer(&Shape::new(&[5])).unwrap(), Shape::scalar());
        assert_eq!(super::infer(&Shape::scalar()).unwrap(), Shape::scalar());
    }

    #[test]
    fn sum_mean_rows() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(execute(&PrimOp::SumRows, &[&x]).unwrap().data(), &[6.0, 15.0]);
        assert_eq!(execute(&PrimOp::MeanRows, &[&x]).unwrap().data(), &[2.0, 5.0]);
    }

    #[test]
    fn max_rows() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, -4.0, -5.0, -6.0], &[2, 3]).unwrap();
        assert_eq!(execute(&PrimOp::MaxRows, &[&x]).unwrap().data(), &[9.0, -4.0]);
    }

    #[test]
    fn argmax_rows_first_max_wins() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 9.0, 7.0, 7.0, 2.0], &[2, 3]).unwrap();
        // Ties resolve to the first (strictly-greater comparison).
        assert_eq!(execute(&PrimOp::ArgmaxRows, &[&x]).unwrap().data(), &[1.0, 0.0]);
    }

    #[test]
    fn argmax_vector_gives_scalar() {
        let x = Tensor::from_vec(vec![0.0, 0.5, 0.25], &[3]).unwrap();
        let out = execute(&PrimOp::ArgmaxRows, &[&x]).unwrap();
        assert_eq!(out.shape().rank(), 0);
        assert_eq!(out.item().unwrap(), 1.0);
    }
}
