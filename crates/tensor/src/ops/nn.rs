//! Neural-network specific kernels: softmax, layer norm, GELU.

use super::RawInput;
use crate::Result;

/// GELU (tanh approximation), matching the constant used by BERT-family
/// models — Berxit in the evaluation needs it.
#[inline]
pub(crate) fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)).tanh())
}

/// Numerically-stable softmax over the last axis.
pub(crate) fn softmax_rows(input: RawInput<'_>, out: &mut [f32]) -> Result<()> {
    let n = input.1.last_dim().max(1);
    let rows = input.1.rows();
    for r in 0..rows {
        let row = &input.0[r * n..(r + 1) * n];
        let orow = &mut out[r * n..(r + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (o, &x) in orow.iter_mut().zip(row) {
            *o = (x - max).exp();
            sum += *o;
        }
        for o in orow.iter_mut() {
            *o /= sum;
        }
    }
    Ok(())
}

/// Layer normalization over the last axis (no affine parameters — scale and
/// shift are expressed as separate `mul`/`add` operators so the fusion pass
/// can see them).
pub(crate) fn layer_norm_rows(input: RawInput<'_>, out: &mut [f32], eps: f32) -> Result<()> {
    let n = input.1.last_dim().max(1);
    let rows = input.1.rows();
    for r in 0..rows {
        let row = &input.0[r * n..(r + 1) * n];
        let orow = &mut out[r * n..(r + 1) * n];
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        let denom = (var + eps).sqrt();
        for (o, &x) in orow.iter_mut().zip(row) {
            *o = (x - mean) / denom;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{execute, PrimOp, Tensor};

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]).unwrap();
        let s = execute(&PrimOp::SoftmaxRows, &[&x]).unwrap();
        let row0: f32 = s.data()[..3].iter().sum();
        let row1: f32 = s.data()[3..].iter().sum();
        assert!((row0 - 1.0).abs() < 1e-5);
        assert!((row1 - 1.0).abs() < 1e-5, "stable under large inputs");
        assert!(s.data()[2] > s.data()[1] && s.data()[1] > s.data()[0]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let y = execute(&PrimOp::LayerNormRows { eps: 1e-5 }, &[&x]).unwrap();
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        let var: f32 = y.data().iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_reference_points() {
        // GELU(0) = 0, GELU(x) → x for large x, GELU(-x) → 0 for large x.
        assert_eq!(super::gelu_scalar(0.0), 0.0);
        assert!((super::gelu_scalar(10.0) - 10.0).abs() < 1e-3);
        assert!(super::gelu_scalar(-10.0).abs() < 1e-3);
        // GELU(1) ≈ 0.8412
        assert!((super::gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
    }
}
