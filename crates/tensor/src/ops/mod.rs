//! Primitive tensor operators: definition, shape inference, FLOP model and a
//! reference CPU executor.
//!
//! Every tensor computation in the workspace bottoms out in a [`PrimOp`].
//! The frontend language (`acrobat-ir`) maps operator names like `nn.dense`
//! to `PrimOp`s; the kernel generator (`acrobat-codegen`) composes them into
//! fused kernel programs; the runtime executes them — unbatched here, or
//! batched through [`crate::batch`].

mod elementwise;
mod matmul;
mod nn;
mod reduce;
mod shape_ops;

use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

pub use elementwise::{map_binary, map_unary, BinaryKind, UnaryKind};
pub use matmul::{matmul_raw, matmul_raw_blocked};

use crate::{Result, Shape, Tensor, TensorError};

/// A primitive tensor operator.
///
/// `PrimOp` implements `Eq` and `Hash` (floating-point attributes are
/// compared bit-wise) because batching signatures — "these DFG nodes run the
/// same kernel" — are keyed on the operator plus its operand shapes.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PrimOp {
    // -- unary elementwise ------------------------------------------------
    /// Rectified linear unit, `max(x, 0)`.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Elementwise exponential.
    Exp,
    /// Elementwise natural logarithm.
    Log,
    /// Elementwise negation.
    Neg,
    /// Elementwise square root.
    Sqrt,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    // -- binary elementwise (broadcasting) --------------------------------
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise multiplication.
    Mul,
    /// Elementwise division.
    Div,
    /// Elementwise maximum.
    Maximum,
    // -- matrix ------------------------------------------------------------
    /// Matrix product `[m, k] × [k, n] → [m, n]`.
    MatMul,
    // -- row-wise reductions (reduce the last axis) ------------------------
    /// Sum over the last axis.
    SumRows,
    /// Mean over the last axis.
    MeanRows,
    /// Maximum over the last axis.
    MaxRows,
    /// Index of the maximum over the last axis, as `f32`.
    ArgmaxRows,
    // -- row-wise normalizations (shape preserving) -------------------------
    /// Numerically-stable softmax over the last axis.
    SoftmaxRows,
    /// Layer normalization over the last axis.
    LayerNormRows {
        /// Stabilizing epsilon added to the variance.
        eps: f32,
    },
    // -- shape -------------------------------------------------------------
    /// Concatenation of all inputs along `axis`.
    Concat {
        /// Axis along which inputs are concatenated.
        axis: usize,
    },
    /// 2-D transpose.
    Transpose,
    /// Reinterpret the input under a new shape of equal volume.
    Reshape {
        /// Target shape.
        shape: Shape,
    },
    /// Contiguous slice `[start, start + len)` along `axis`.
    Slice {
        /// Sliced axis.
        axis: usize,
        /// Start offset along the axis.
        start: usize,
        /// Length of the slice along the axis.
        len: usize,
    },
    // -- creation ----------------------------------------------------------
    /// A constant-filled tensor (no inputs).
    Fill {
        /// Fill value.
        value: f32,
        /// Shape of the created tensor.
        shape: Shape,
    },
    // -- data movement -----------------------------------------------------
    /// Identity copy.
    Copy,
}

impl PrimOp {
    /// Short stable name used in kernel signatures and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            PrimOp::Relu => "relu",
            PrimOp::Sigmoid => "sigmoid",
            PrimOp::Tanh => "tanh",
            PrimOp::Exp => "exp",
            PrimOp::Log => "log",
            PrimOp::Neg => "neg",
            PrimOp::Sqrt => "sqrt",
            PrimOp::Gelu => "gelu",
            PrimOp::Add => "add",
            PrimOp::Sub => "sub",
            PrimOp::Mul => "mul",
            PrimOp::Div => "div",
            PrimOp::Maximum => "maximum",
            PrimOp::MatMul => "matmul",
            PrimOp::SumRows => "sum_rows",
            PrimOp::MeanRows => "mean_rows",
            PrimOp::MaxRows => "max_rows",
            PrimOp::ArgmaxRows => "argmax_rows",
            PrimOp::SoftmaxRows => "softmax_rows",
            PrimOp::LayerNormRows { .. } => "layer_norm_rows",
            PrimOp::Concat { .. } => "concat",
            PrimOp::Transpose => "transpose",
            PrimOp::Reshape { .. } => "reshape",
            PrimOp::Slice { .. } => "slice",
            PrimOp::Fill { .. } => "fill",
            PrimOp::Copy => "copy",
        }
    }

    /// Number of inputs the operator accepts; `None` for variadic operators
    /// ([`PrimOp::Concat`]).
    pub fn arity(&self) -> Option<usize> {
        match self {
            PrimOp::Relu
            | PrimOp::Sigmoid
            | PrimOp::Tanh
            | PrimOp::Exp
            | PrimOp::Log
            | PrimOp::Neg
            | PrimOp::Sqrt
            | PrimOp::Gelu
            | PrimOp::SumRows
            | PrimOp::MeanRows
            | PrimOp::MaxRows
            | PrimOp::ArgmaxRows
            | PrimOp::SoftmaxRows
            | PrimOp::LayerNormRows { .. }
            | PrimOp::Transpose
            | PrimOp::Reshape { .. }
            | PrimOp::Slice { .. }
            | PrimOp::Copy => Some(1),
            PrimOp::Add
            | PrimOp::Sub
            | PrimOp::Mul
            | PrimOp::Div
            | PrimOp::Maximum
            | PrimOp::MatMul => Some(2),
            PrimOp::Fill { .. } => Some(0),
            PrimOp::Concat { .. } => None,
        }
    }

    /// Whether the operator is elementwise (unary or binary with broadcast).
    ///
    /// Elementwise operators are the candidates for vertical kernel fusion.
    pub fn is_elementwise(&self) -> bool {
        matches!(
            self,
            PrimOp::Relu
                | PrimOp::Sigmoid
                | PrimOp::Tanh
                | PrimOp::Exp
                | PrimOp::Log
                | PrimOp::Neg
                | PrimOp::Sqrt
                | PrimOp::Gelu
                | PrimOp::Add
                | PrimOp::Sub
                | PrimOp::Mul
                | PrimOp::Div
                | PrimOp::Maximum
        )
    }

    /// The scalar semantics of a unary elementwise operator, if `self` is
    /// one (see [`UnaryKind`] — the function both execution paths share).
    pub fn unary_kind(&self) -> Option<UnaryKind> {
        match self {
            PrimOp::Relu => Some(UnaryKind::Relu),
            PrimOp::Sigmoid => Some(UnaryKind::Sigmoid),
            PrimOp::Tanh => Some(UnaryKind::Tanh),
            PrimOp::Exp => Some(UnaryKind::Exp),
            PrimOp::Log => Some(UnaryKind::Log),
            PrimOp::Neg => Some(UnaryKind::Neg),
            PrimOp::Sqrt => Some(UnaryKind::Sqrt),
            PrimOp::Gelu => Some(UnaryKind::Gelu),
            _ => None,
        }
    }

    /// The scalar semantics of a binary elementwise operator, if `self` is
    /// one (see [`BinaryKind`]).
    pub fn binary_kind(&self) -> Option<BinaryKind> {
        match self {
            PrimOp::Add => Some(BinaryKind::Add),
            PrimOp::Sub => Some(BinaryKind::Sub),
            PrimOp::Mul => Some(BinaryKind::Mul),
            PrimOp::Div => Some(BinaryKind::Div),
            PrimOp::Maximum => Some(BinaryKind::Maximum),
            _ => None,
        }
    }

    /// Whether the operator only rearranges or relabels memory.
    ///
    /// These are the "memory copy operators" the paper force-fuses with their
    /// consumers (§D.3).
    pub fn is_memory_op(&self) -> bool {
        matches!(
            self,
            PrimOp::Concat { .. }
                | PrimOp::Transpose
                | PrimOp::Reshape { .. }
                | PrimOp::Slice { .. }
                | PrimOp::Copy
        )
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimOp::LayerNormRows { eps } => write!(f, "layer_norm_rows(eps={eps})"),
            PrimOp::Concat { axis } => write!(f, "concat(axis={axis})"),
            PrimOp::Reshape { shape } => write!(f, "reshape(to={shape})"),
            PrimOp::Slice { axis, start, len } => {
                write!(f, "slice(axis={axis}, {start}..{})", start + len)
            }
            PrimOp::Fill { value, shape } => write!(f, "fill({value}, {shape})"),
            other => f.write_str(other.name()),
        }
    }
}

impl PartialEq for PrimOp {
    fn eq(&self, other: &Self) -> bool {
        use PrimOp::*;
        match (self, other) {
            (LayerNormRows { eps: a }, LayerNormRows { eps: b }) => a.to_bits() == b.to_bits(),
            (Concat { axis: a }, Concat { axis: b }) => a == b,
            (Reshape { shape: a }, Reshape { shape: b }) => a == b,
            (Slice { axis: a1, start: s1, len: l1 }, Slice { axis: a2, start: s2, len: l2 }) => {
                a1 == a2 && s1 == s2 && l1 == l2
            }
            (Fill { value: v1, shape: s1 }, Fill { value: v2, shape: s2 }) => {
                v1.to_bits() == v2.to_bits() && s1 == s2
            }
            _ => std::mem::discriminant(self) == std::mem::discriminant(other),
        }
    }
}

impl Eq for PrimOp {}

impl Hash for PrimOp {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            PrimOp::LayerNormRows { eps } => eps.to_bits().hash(state),
            PrimOp::Concat { axis } => axis.hash(state),
            PrimOp::Reshape { shape } => shape.hash(state),
            PrimOp::Slice { axis, start, len } => {
                axis.hash(state);
                start.hash(state);
                len.hash(state);
            }
            PrimOp::Fill { value, shape } => {
                value.to_bits().hash(state);
                shape.hash(state);
            }
            _ => {}
        }
    }
}

fn check_arity(op: &PrimOp, got: usize) -> Result<()> {
    match op.arity() {
        Some(expected) if expected != got => {
            Err(TensorError::Arity { op: op.name(), got, expected })
        }
        None if got == 0 => Err(TensorError::Arity { op: op.name(), got, expected: 1 }),
        _ => Ok(()),
    }
}

/// Infers the output shape of `op` applied to operands of `inputs` shapes.
///
/// # Errors
///
/// Returns a [`TensorError`] if the operand count, ranks, extents or
/// attributes are incompatible.
pub fn infer_shape(op: &PrimOp, inputs: &[&Shape]) -> Result<Shape> {
    check_arity(op, inputs.len())?;
    match op {
        PrimOp::Relu
        | PrimOp::Sigmoid
        | PrimOp::Tanh
        | PrimOp::Exp
        | PrimOp::Log
        | PrimOp::Neg
        | PrimOp::Sqrt
        | PrimOp::Gelu
        | PrimOp::SoftmaxRows
        | PrimOp::LayerNormRows { .. }
        | PrimOp::Copy => Ok(inputs[0].clone()),
        PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div | PrimOp::Maximum => {
            inputs[0].broadcast(inputs[1])
        }
        PrimOp::MatMul => matmul::infer(inputs[0], inputs[1]),
        PrimOp::SumRows | PrimOp::MeanRows | PrimOp::MaxRows | PrimOp::ArgmaxRows => {
            reduce::infer(inputs[0])
        }
        PrimOp::Concat { axis } => shape_ops::infer_concat(inputs, *axis),
        PrimOp::Transpose => shape_ops::infer_transpose(inputs[0]),
        PrimOp::Reshape { shape } => shape_ops::infer_reshape(inputs[0], shape),
        PrimOp::Slice { axis, start, len } => {
            shape_ops::infer_slice(inputs[0], *axis, *start, *len)
        }
        PrimOp::Fill { shape, .. } => Ok(shape.clone()),
    }
}

/// Approximate floating-point operation count for one invocation.
///
/// Feeds the simulated accelerator's compute-cost term; the constants follow
/// the usual conventions (a fused multiply-add counts as two).
pub fn flops(op: &PrimOp, inputs: &[&Shape]) -> u64 {
    let out = match infer_shape(op, inputs) {
        Ok(s) => s,
        Err(_) => return 0,
    };
    let n = out.numel() as u64;
    match op {
        PrimOp::MatMul => {
            let (m, k) = inputs[0].as_matrix().unwrap_or((1, 1));
            let (_, c) = inputs[1].as_matrix().unwrap_or((1, 1));
            2 * m as u64 * k as u64 * c as u64
        }
        PrimOp::Sigmoid | PrimOp::Tanh | PrimOp::Exp | PrimOp::Log | PrimOp::Sqrt => 4 * n,
        PrimOp::Gelu => 8 * n,
        PrimOp::SoftmaxRows => 5 * inputs[0].numel() as u64,
        PrimOp::LayerNormRows { .. } => 6 * inputs[0].numel() as u64,
        PrimOp::SumRows | PrimOp::MeanRows | PrimOp::MaxRows | PrimOp::ArgmaxRows => {
            inputs[0].numel() as u64
        }
        PrimOp::Concat { .. }
        | PrimOp::Transpose
        | PrimOp::Reshape { .. }
        | PrimOp::Slice { .. }
        | PrimOp::Copy
        | PrimOp::Fill { .. } => 0,
        _ => n,
    }
}

/// A borrowed raw operand: flat data plus shape.
pub type RawInput<'a> = (&'a [f32], &'a Shape);

/// Executes `op` on raw slices, writing into `out`.
///
/// This is the low-level entry point used by generated kernel programs
/// (`acrobat-codegen`), which manage their own register buffers.  `out` must
/// have exactly the inferred output volume.
///
/// # Errors
///
/// Propagates shape-inference and kernel errors.
pub fn execute_slices(op: &PrimOp, inputs: &[RawInput<'_>], out: &mut [f32]) -> Result<()> {
    execute_raw(op, inputs, out)
}

/// Executes `op` on raw slices, writing into `out` (length must equal the
/// inferred output volume).  Core entry point shared by the unbatched and
/// batched paths.
pub(crate) fn execute_raw(op: &PrimOp, inputs: &[RawInput<'_>], out: &mut [f32]) -> Result<()> {
    match op {
        PrimOp::Relu
        | PrimOp::Sigmoid
        | PrimOp::Tanh
        | PrimOp::Exp
        | PrimOp::Log
        | PrimOp::Neg
        | PrimOp::Sqrt
        | PrimOp::Gelu => {
            let k = op.unary_kind().expect("unary elementwise op");
            elementwise::unary(inputs[0], out, |x| k.apply(x))
        }
        PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div | PrimOp::Maximum => {
            let k = op.binary_kind().expect("binary elementwise op");
            elementwise::binary(inputs[0], inputs[1], out, |a, b| k.apply(a, b))
        }
        PrimOp::MatMul => matmul::matmul(inputs[0], inputs[1], out),
        PrimOp::SumRows => reduce::reduce(inputs[0], out, reduce::Reduction::Sum),
        PrimOp::MeanRows => reduce::reduce(inputs[0], out, reduce::Reduction::Mean),
        PrimOp::MaxRows => reduce::reduce(inputs[0], out, reduce::Reduction::Max),
        PrimOp::ArgmaxRows => reduce::reduce(inputs[0], out, reduce::Reduction::Argmax),
        PrimOp::SoftmaxRows => nn::softmax_rows(inputs[0], out),
        PrimOp::LayerNormRows { eps } => nn::layer_norm_rows(inputs[0], out, *eps),
        PrimOp::Concat { axis } => shape_ops::concat(inputs, *axis, out),
        PrimOp::Transpose => shape_ops::transpose(inputs[0], out),
        PrimOp::Reshape { .. } | PrimOp::Copy => {
            out.copy_from_slice(inputs[0].0);
            Ok(())
        }
        PrimOp::Slice { axis, start, len } => shape_ops::slice(inputs[0], *axis, *start, *len, out),
        PrimOp::Fill { value, .. } => {
            out.fill(*value);
            Ok(())
        }
    }
}

/// Executes `op` on host tensors, allocating the output.
///
/// This is the reference (unbatched) execution path; the runtime uses the
/// arena-based batched path instead.
///
/// # Errors
///
/// Propagates shape-inference and kernel errors.
///
/// ```
/// use acrobat_tensor::{execute, PrimOp, Tensor};
///
/// let x = Tensor::from_vec(vec![-1.0, 2.0], &[2])?;
/// let y = execute(&PrimOp::Relu, &[&x])?;
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// # Ok::<(), acrobat_tensor::TensorError>(())
/// ```
pub fn execute(op: &PrimOp, inputs: &[&Tensor]) -> Result<Tensor> {
    let shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
    let out_shape = infer_shape(op, &shapes)?;
    let mut out = vec![0.0f32; out_shape.numel()];
    let raw: Vec<RawInput<'_>> = inputs.iter().map(|t| (t.data(), t.shape())).collect();
    execute_raw(op, &raw, &mut out)?;
    Tensor::from_vec(out, out_shape.dims())
}

/// Executes `op` writing the result into a caller-provided buffer.
///
/// # Errors
///
/// Returns [`TensorError::DataLength`] if `out` has the wrong length, and
/// propagates shape-inference and kernel errors.
pub fn execute_into(op: &PrimOp, inputs: &[&Tensor], out: &mut [f32]) -> Result<Shape> {
    let shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
    let out_shape = infer_shape(op, &shapes)?;
    if out.len() != out_shape.numel() {
        return Err(TensorError::DataLength { got: out.len(), expected: out_shape.numel() });
    }
    let raw: Vec<RawInput<'_>> = inputs.iter().map(|t| (t.data(), t.shape())).collect();
    execute_raw(op, &raw, out)?;
    Ok(out_shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_enforced() {
        let x = Tensor::zeros(&[2]);
        assert!(matches!(
            execute(&PrimOp::Add, &[&x]),
            Err(TensorError::Arity { op: "add", got: 1, expected: 2 })
        ));
        assert!(execute(&PrimOp::Concat { axis: 0 }, &[]).is_err());
    }

    #[test]
    fn primop_eq_hash_uses_attrs() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(PrimOp::Fill { value: 0.0, shape: Shape::new(&[2]) });
        assert!(set.contains(&PrimOp::Fill { value: 0.0, shape: Shape::new(&[2]) }));
        assert!(!set.contains(&PrimOp::Fill { value: 1.0, shape: Shape::new(&[2]) }));
        assert!(!set.contains(&PrimOp::Fill { value: 0.0, shape: Shape::new(&[3]) }));
        assert_ne!(PrimOp::Concat { axis: 0 }, PrimOp::Concat { axis: 1 });
        assert_eq!(PrimOp::Add, PrimOp::Add);
        assert_ne!(PrimOp::Add, PrimOp::Sub);
    }

    #[test]
    fn flops_matmul() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::new(&[3, 4]);
        assert_eq!(flops(&PrimOp::MatMul, &[&a, &b]), 2 * 2 * 3 * 4);
    }

    #[test]
    fn flops_memory_ops_zero() {
        let a = Shape::new(&[4, 4]);
        assert_eq!(flops(&PrimOp::Transpose, &[&a]), 0);
        assert_eq!(flops(&PrimOp::Copy, &[&a]), 0);
    }

    #[test]
    fn execute_into_checks_buffer() {
        let x = Tensor::zeros(&[4]);
        let mut small = vec![0.0; 3];
        assert!(execute_into(&PrimOp::Relu, &[&x], &mut small).is_err());
        let mut right = vec![0.0; 4];
        assert!(execute_into(&PrimOp::Relu, &[&x], &mut right).is_ok());
    }

    #[test]
    fn display_formats() {
        assert_eq!(PrimOp::Concat { axis: 1 }.to_string(), "concat(axis=1)");
        assert_eq!(PrimOp::Slice { axis: 0, start: 2, len: 3 }.to_string(), "slice(axis=0, 2..5)");
        assert_eq!(PrimOp::MatMul.to_string(), "matmul");
    }
}
