//! Matrix-multiplication kernel.

use super::RawInput;
use crate::{Result, Shape, TensorError};

/// Shape rule: `[m, k] × [k, n] → [m, n]`, with rank-1 operands promoted to a
/// single row on the left.
pub(crate) fn infer(lhs: &Shape, rhs: &Shape) -> Result<Shape> {
    let (m, k) = lhs.as_matrix()?;
    let (k2, n) = rhs.as_matrix()?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        });
    }
    if lhs.rank() <= 1 && rhs.rank() <= 1 {
        // vector × vector is not meaningful under this rule; reject rank-1 rhs.
        return Err(TensorError::Rank { op: "matmul", shape: rhs.clone(), expected: 2 });
    }
    if rhs.rank() != 2 {
        return Err(TensorError::Rank { op: "matmul", shape: rhs.clone(), expected: 2 });
    }
    Ok(if lhs.rank() <= 1 { Shape::new(&[n]) } else { Shape::new(&[m, n]) })
}

/// Straightforward i-k-j matrix multiply; cache-friendly for the row-major
/// layouts used throughout.
pub(crate) fn matmul(lhs: RawInput<'_>, rhs: RawInput<'_>, out: &mut [f32]) -> Result<()> {
    let (m, k) = lhs.1.as_matrix()?;
    let (_, n) = rhs.1.as_matrix()?;
    debug_assert_eq!(out.len(), m * n);
    matmul_raw(lhs.0, rhs.0, out, m, k, n);
    Ok(())
}

/// The i-k-j multiply on raw slices with pre-resolved dimensions.
///
/// Shared verbatim by [`matmul`] and by specialized kernels that resolve the
/// matrix dimensions once at compile time — both paths accumulate in the
/// exact same order, so their results agree bit for bit.
pub fn matmul_raw(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// [`matmul_raw`] with output rows processed four at a time.
///
/// Every output row still accumulates in the reference `k`-then-`j` order
/// from its own left row and the shared right operand, so each row's bits
/// are exactly [`matmul_raw`]'s — row blocking only interleaves *independent*
/// rows, loading each right-operand row once per block instead of once per
/// row.  Used by specialized kernels on lane-stacked multiplies, where `m`
/// is the batch dimension and large.
pub fn matmul_raw_blocked(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    let blocks = m / 4;
    for blk in 0..blocks {
        let i = blk * 4;
        let a_blk = &a[i * k..(i + 4) * k];
        let (o0, rest) = out[i * n..(i + 4) * n].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        for kk in 0..k {
            let b_row = &b[kk * n..(kk + 1) * n];
            let (av0, av1, av2, av3) =
                (a_blk[kk], a_blk[k + kk], a_blk[2 * k + kk], a_blk[3 * k + kk]);
            for ((((o0, o1), o2), o3), &bv) in
                o0.iter_mut().zip(o1.iter_mut()).zip(o2.iter_mut()).zip(o3.iter_mut()).zip(b_row)
            {
                *o0 += av0 * bv;
                *o1 += av1 * bv;
                *o2 += av2 * bv;
                *o3 += av3 * bv;
            }
        }
    }
    for i in blocks * 4..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{execute, PrimOp, Shape, Tensor};

    #[test]
    fn infer_shapes() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::new(&[3, 4]);
        assert_eq!(super::infer(&a, &b).unwrap(), Shape::new(&[2, 4]));
        let v = Shape::new(&[3]);
        assert_eq!(super::infer(&v, &b).unwrap(), Shape::new(&[4]));
        assert!(super::infer(&a, &Shape::new(&[4, 3])).is_err());
        assert!(super::infer(&a, &v).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let out = execute(&PrimOp::MatMul, &[&a, &eye]).unwrap();
        assert_eq!(out.data(), a.data());
    }

    #[test]
    fn matmul_known_values() {
        // [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let out = execute(&PrimOp::MatMul, &[&a, &b]).unwrap();
        assert_eq!(out.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_fn(&[1, 3], |i| (i + 1) as f32); // [1 2 3]
        let b = Tensor::from_fn(&[3, 2], |i| i as f32); // [0 1; 2 3; 4 5]
        let out = execute(&PrimOp::MatMul, &[&a, &b]).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2]);
        assert_eq!(out.data(), &[16.0, 22.0]);
    }

    #[test]
    fn blocked_matches_reference_bits() {
        // Awkward sizes: tail rows, k/n not multiples of the block width.
        for (m, k, n) in [(1, 3, 5), (4, 4, 4), (6, 7, 3), (13, 5, 9), (64, 16, 16)] {
            let a: Vec<f32> =
                (0..m * k).map(|i| ((i * 37 + 11) % 97) as f32 * 0.173 - 7.0).collect();
            let b: Vec<f32> =
                (0..k * n).map(|i| ((i * 53 + 29) % 89) as f32 * 0.091 - 4.0).collect();
            let mut want = vec![0.0; m * n];
            let mut got = vec![1.0; m * n];
            super::matmul_raw(&a, &b, &mut want, m, k, n);
            super::matmul_raw_blocked(&a, &b, &mut got, m, k, n);
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.to_bits(), g.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn matmul_vector_lhs() {
        let v = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let out = execute(&PrimOp::MatMul, &[&v, &b]).unwrap();
        assert_eq!(out.shape().dims(), &[2]);
        assert_eq!(out.data(), &[4.0, 6.0]);
    }
}
