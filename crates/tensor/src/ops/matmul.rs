//! Matrix-multiplication kernel.

use super::RawInput;
use crate::{Result, Shape, TensorError};

/// Shape rule: `[m, k] × [k, n] → [m, n]`, with rank-1 operands promoted to a
/// single row on the left.
pub(crate) fn infer(lhs: &Shape, rhs: &Shape) -> Result<Shape> {
    let (m, k) = lhs.as_matrix()?;
    let (k2, n) = rhs.as_matrix()?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        });
    }
    if lhs.rank() <= 1 && rhs.rank() <= 1 {
        // vector × vector is not meaningful under this rule; reject rank-1 rhs.
        return Err(TensorError::Rank { op: "matmul", shape: rhs.clone(), expected: 2 });
    }
    if rhs.rank() != 2 {
        return Err(TensorError::Rank { op: "matmul", shape: rhs.clone(), expected: 2 });
    }
    Ok(if lhs.rank() <= 1 { Shape::new(&[n]) } else { Shape::new(&[m, n]) })
}

/// Straightforward i-k-j matrix multiply; cache-friendly for the row-major
/// layouts used throughout.
pub(crate) fn matmul(lhs: RawInput<'_>, rhs: RawInput<'_>, out: &mut [f32]) -> Result<()> {
    let (m, k) = lhs.1.as_matrix()?;
    let (_, n) = rhs.1.as_matrix()?;
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for i in 0..m {
        let a_row = &lhs.0[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &a) in a_row.iter().enumerate() {
            let b_row = &rhs.0[kk * n..(kk + 1) * n];
            for (o, &b) in o_row.iter_mut().zip(b_row) {
                *o += a * b;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{execute, PrimOp, Shape, Tensor};

    #[test]
    fn infer_shapes() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::new(&[3, 4]);
        assert_eq!(super::infer(&a, &b).unwrap(), Shape::new(&[2, 4]));
        let v = Shape::new(&[3]);
        assert_eq!(super::infer(&v, &b).unwrap(), Shape::new(&[4]));
        assert!(super::infer(&a, &Shape::new(&[4, 3])).is_err());
        assert!(super::infer(&a, &v).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let out = execute(&PrimOp::MatMul, &[&a, &eye]).unwrap();
        assert_eq!(out.data(), a.data());
    }

    #[test]
    fn matmul_known_values() {
        // [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let out = execute(&PrimOp::MatMul, &[&a, &b]).unwrap();
        assert_eq!(out.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_fn(&[1, 3], |i| (i + 1) as f32); // [1 2 3]
        let b = Tensor::from_fn(&[3, 2], |i| i as f32); // [0 1; 2 3; 4 5]
        let out = execute(&PrimOp::MatMul, &[&a, &b]).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2]);
        assert_eq!(out.data(), &[16.0, 22.0]);
    }

    #[test]
    fn matmul_vector_lhs() {
        let v = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let out = execute(&PrimOp::MatMul, &[&v, &b]).unwrap();
        assert_eq!(out.shape().dims(), &[2]);
        assert_eq!(out.data(), &[4.0, 6.0]);
    }
}
