//! Memory-layout operators: concat, transpose, reshape, slice.

use super::RawInput;
use crate::{Result, Shape, TensorError};

pub(crate) fn infer_concat(inputs: &[&Shape], axis: usize) -> Result<Shape> {
    let first = inputs[0];
    if axis >= first.rank().max(1) {
        return Err(TensorError::Axis { op: "concat", axis, rank: first.rank() });
    }
    let mut dims = first.dims().to_vec();
    for other in &inputs[1..] {
        if other.rank() != first.rank() {
            return Err(TensorError::ShapeMismatch {
                op: "concat",
                lhs: first.clone(),
                rhs: (*other).clone(),
            });
        }
        for (d, (a, b)) in first.dims().iter().zip(other.dims()).enumerate() {
            if d != axis && a != b {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.clone(),
                    rhs: (*other).clone(),
                });
            }
        }
        dims[axis] += other.dim(axis);
    }
    Ok(Shape::from(dims))
}

pub(crate) fn infer_transpose(input: &Shape) -> Result<Shape> {
    let (m, n) = input.as_matrix()?;
    if input.rank() != 2 {
        return Err(TensorError::Rank { op: "transpose", shape: input.clone(), expected: 2 });
    }
    Ok(Shape::new(&[n, m]))
}

pub(crate) fn infer_reshape(input: &Shape, target: &Shape) -> Result<Shape> {
    if input.numel() != target.numel() {
        return Err(TensorError::ReshapeNumel { from: input.clone(), to: target.clone() });
    }
    Ok(target.clone())
}

pub(crate) fn infer_slice(input: &Shape, axis: usize, start: usize, len: usize) -> Result<Shape> {
    if axis >= input.rank() {
        return Err(TensorError::Axis { op: "slice", axis, rank: input.rank() });
    }
    let extent = input.dim(axis);
    if start + len > extent || len == 0 {
        return Err(TensorError::SliceRange { start, len, extent });
    }
    let mut dims = input.dims().to_vec();
    dims[axis] = len;
    Ok(Shape::from(dims))
}

pub(crate) fn concat(inputs: &[RawInput<'_>], axis: usize, out: &mut [f32]) -> Result<()> {
    let shapes: Vec<&Shape> = inputs.iter().map(|(_, s)| *s).collect();
    let out_shape = infer_concat(&shapes, axis)?;
    let strides = out_shape.strides();
    // Number of "outer" blocks before the concat axis.
    let outer: usize = out_shape.dims()[..axis].iter().product::<usize>().max(1);
    let out_block = if axis < strides.len() { strides[axis] * out_shape.dim(axis) } else { 1 };
    let mut axis_offset = 0usize;
    for (data, shape) in inputs {
        let in_strides = shape.strides();
        let in_block = if axis < in_strides.len() { in_strides[axis] * shape.dim(axis) } else { 1 };
        let axis_stride = strides[axis];
        for o in 0..outer {
            let src = &data[o * in_block..(o + 1) * in_block];
            let dst_start = o * out_block + axis_offset * axis_stride;
            out[dst_start..dst_start + in_block].copy_from_slice(src);
        }
        axis_offset += shape.dim(axis);
    }
    Ok(())
}

pub(crate) fn transpose(input: RawInput<'_>, out: &mut [f32]) -> Result<()> {
    let (m, n) = input.1.as_matrix()?;
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = input.0[i * n + j];
        }
    }
    Ok(())
}

pub(crate) fn slice(
    input: RawInput<'_>,
    axis: usize,
    start: usize,
    len: usize,
    out: &mut [f32],
) -> Result<()> {
    let shape = input.1;
    let strides = shape.strides();
    let outer: usize = shape.dims()[..axis].iter().product::<usize>().max(1);
    let axis_stride = strides[axis];
    let in_block = axis_stride * shape.dim(axis);
    let out_block = axis_stride * len;
    for o in 0..outer {
        let src_start = o * in_block + start * axis_stride;
        out[o * out_block..(o + 1) * out_block]
            .copy_from_slice(&input.0[src_start..src_start + out_block]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{execute, PrimOp, Tensor};

    #[test]
    fn concat_axis0() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap();
        let c = Tensor::from_vec(vec![5.0, 6.0], &[1, 2]).unwrap();
        let out = execute(&PrimOp::Concat { axis: 0 }, &[&a, &b, &c]).unwrap();
        assert_eq!(out.shape().dims(), &[3, 2]);
        assert_eq!(out.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 5.0, 6.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 7.0], &[2, 1]).unwrap();
        let out = execute(&PrimOp::Concat { axis: 1 }, &[&a, &b]).unwrap();
        assert_eq!(out.shape().dims(), &[2, 3]);
        assert_eq!(out.data(), &[1.0, 2.0, 3.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn concat_shape_errors() {
        let a = Tensor::zeros(&[1, 2]);
        let b = Tensor::zeros(&[1, 3]);
        assert!(execute(&PrimOp::Concat { axis: 0 }, &[&a, &b]).is_err());
        assert!(execute(&PrimOp::Concat { axis: 5 }, &[&a, &a]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_fn(&[2, 3], |i| i as f32);
        let t = execute(&PrimOp::Transpose, &[&a]).unwrap();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.data(), &[0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        let back = execute(&PrimOp::Transpose, &[&t]).unwrap();
        assert_eq!(back.data(), a.data());
    }

    #[test]
    fn slice_axis1() {
        let a = Tensor::from_fn(&[2, 4], |i| i as f32);
        let s = execute(&PrimOp::Slice { axis: 1, start: 1, len: 2 }, &[&a]).unwrap();
        assert_eq!(s.shape().dims(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_axis0() {
        let a = Tensor::from_fn(&[3, 2], |i| i as f32);
        let s = execute(&PrimOp::Slice { axis: 0, start: 2, len: 1 }, &[&a]).unwrap();
        assert_eq!(s.shape().dims(), &[1, 2]);
        assert_eq!(s.data(), &[4.0, 5.0]);
    }

    #[test]
    fn slice_out_of_range() {
        let a = Tensor::zeros(&[2, 2]);
        assert!(execute(&PrimOp::Slice { axis: 1, start: 1, len: 2 }, &[&a]).is_err());
        assert!(execute(&PrimOp::Slice { axis: 1, start: 0, len: 0 }, &[&a]).is_err());
    }

    #[test]
    fn reshape_op() {
        let a = Tensor::from_fn(&[2, 3], |i| i as f32);
        let r = execute(&PrimOp::Reshape { shape: crate::Shape::new(&[3, 2]) }, &[&a]).unwrap();
        assert_eq!(r.shape().dims(), &[3, 2]);
        assert_eq!(r.data(), a.data());
    }

    #[test]
    fn fill_op() {
        let out =
            execute(&PrimOp::Fill { value: 2.5, shape: crate::Shape::new(&[2, 2]) }, &[]).unwrap();
        assert_eq!(out.data(), &[2.5; 4]);
    }
}
