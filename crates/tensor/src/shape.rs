use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Result, TensorError};

/// A dense, row-major tensor shape.
///
/// Shapes are small (rank ≤ 4 in every model the paper evaluates) so they are
/// stored inline in a `Vec<usize>`; scalars are rank-0 shapes with volume 1.
///
/// ```
/// use acrobat_tensor::Shape;
///
/// let s = Shape::new(&[2, 3]);
/// assert_eq!(s.numel(), 6);
/// assert_eq!(s.strides(), vec![3, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extents of all axes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of axis `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements (1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of the shape in bytes when stored as `f32`.
    pub fn byte_size(&self) -> usize {
        self.numel() * std::mem::size_of::<f32>()
    }

    /// Row-major strides, one per axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Returns `true` if this shape is rank 2.
    pub fn is_matrix(&self) -> bool {
        self.rank() == 2
    }

    /// Interprets the shape as `(rows, cols)`, treating rank-1 as a single row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Rank`] for ranks above 2.
    pub fn as_matrix(&self) -> Result<(usize, usize)> {
        match self.0.as_slice() {
            [] => Ok((1, 1)),
            [n] => Ok((1, *n)),
            [m, n] => Ok((*m, *n)),
            _ => Err(TensorError::Rank { op: "as_matrix", shape: self.clone(), expected: 2 }),
        }
    }

    /// The number of rows when viewed as a matrix of rows (product of all
    /// axes but the last); scalars have one row.
    pub fn rows(&self) -> usize {
        match self.0.split_last() {
            Some((_, lead)) => lead.iter().product::<usize>().max(1),
            None => 1,
        }
    }

    /// The extent of the last axis (1 for scalars).
    pub fn last_dim(&self) -> usize {
        self.0.last().copied().unwrap_or(1)
    }

    /// Computes the elementwise broadcast of two shapes.
    ///
    /// Supported patterns (sufficient for every model in the paper):
    /// identical shapes; a scalar against anything; a row vector `[1, n]` or
    /// `[n]` against `[m, n]` (bias addition); a column `[m, 1]` against
    /// `[m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes are not
    /// broadcast-compatible under these rules.
    pub fn broadcast(&self, other: &Shape) -> Result<Shape> {
        if self == other {
            return Ok(self.clone());
        }
        if self.numel() == 1 {
            return Ok(other.clone());
        }
        if other.numel() == 1 {
            return Ok(self.clone());
        }
        // Row-vector broadcast: [1, n] or [n] vs [m, n].
        let row_of = |s: &Shape| -> Option<usize> {
            match s.0.as_slice() {
                [n] => Some(*n),
                [1, n] => Some(*n),
                _ => None,
            }
        };
        if let (Some(n), true) = (row_of(self), other.rank() == 2) {
            if other.dim(1) == n {
                return Ok(other.clone());
            }
        }
        if let (Some(n), true) = (row_of(other), self.rank() == 2) {
            if self.dim(1) == n {
                return Ok(self.clone());
            }
        }
        // Column broadcast: [m, 1] vs [m, n].
        if self.rank() == 2 && other.rank() == 2 && self.dim(0) == other.dim(0) {
            if self.dim(1) == 1 {
                return Ok(other.clone());
            }
            if other.dim(1) == 1 {
                return Ok(self.clone());
            }
        }
        Err(TensorError::ShapeMismatch { op: "broadcast", lhs: self.clone(), rhs: other.clone() })
    }

    /// How each element index of the broadcast output maps back into `self`.
    ///
    /// Returns a function-friendly descriptor used by the elementwise kernels
    /// so they can read a broadcast operand without materializing it.
    pub(crate) fn broadcast_index(&self, out: &Shape) -> BroadcastMap {
        if self == out {
            return BroadcastMap::Identity;
        }
        if self.numel() == 1 {
            return BroadcastMap::Scalar;
        }
        let n = out.last_dim();
        match self.0.as_slice() {
            [k] if *k == n => BroadcastMap::Row(n),
            [1, k] if *k == n => BroadcastMap::Row(n),
            [m, 1] if out.rank() == 2 && out.dim(0) == *m => BroadcastMap::Col(n),
            _ => BroadcastMap::Identity,
        }
    }
}

/// How an operand participates in a broadcast elementwise kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BroadcastMap {
    /// Operand has the output shape; index maps through unchanged.
    Identity,
    /// Operand is a single element.
    Scalar,
    /// Operand is a row vector repeated along rows; payload is row length.
    Row(usize),
    /// Operand is a column vector repeated along columns; payload is row
    /// length of the output.
    Col(usize),
}

impl BroadcastMap {
    #[inline]
    pub(crate) fn map(self, i: usize) -> usize {
        match self {
            BroadcastMap::Identity => i,
            BroadcastMap::Scalar => 0,
            BroadcastMap::Row(n) => i % n,
            BroadcastMap::Col(n) => i / n,
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rows(), 1);
        assert_eq!(s.last_dim(), 1);
        assert_eq!(s.to_string(), "()");
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_identical() {
        let a = Shape::new(&[2, 3]);
        assert_eq!(a.broadcast(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_scalar() {
        let a = Shape::new(&[2, 3]);
        let s = Shape::scalar();
        assert_eq!(a.broadcast(&s).unwrap(), a);
        assert_eq!(s.broadcast(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_row() {
        let a = Shape::new(&[4, 3]);
        let r = Shape::new(&[1, 3]);
        let v = Shape::new(&[3]);
        assert_eq!(a.broadcast(&r).unwrap(), a);
        assert_eq!(r.broadcast(&a).unwrap(), a);
        assert_eq!(v.broadcast(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_col() {
        let a = Shape::new(&[4, 3]);
        let c = Shape::new(&[4, 1]);
        assert_eq!(a.broadcast(&c).unwrap(), a);
        assert_eq!(c.broadcast(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_mismatch() {
        let a = Shape::new(&[4, 3]);
        let b = Shape::new(&[3, 4]);
        assert!(a.broadcast(&b).is_err());
    }

    #[test]
    fn as_matrix_ranks() {
        assert_eq!(Shape::scalar().as_matrix().unwrap(), (1, 1));
        assert_eq!(Shape::new(&[7]).as_matrix().unwrap(), (1, 7));
        assert_eq!(Shape::new(&[2, 7]).as_matrix().unwrap(), (2, 7));
        assert!(Shape::new(&[2, 7, 3]).as_matrix().is_err());
    }

    #[test]
    fn broadcast_map_indices() {
        let out = Shape::new(&[2, 3]);
        let row = Shape::new(&[1, 3]);
        let col = Shape::new(&[2, 1]);
        let m = row.broadcast_index(&out);
        assert_eq!((0..6).map(|i| m.map(i)).collect::<Vec<_>>(), vec![0, 1, 2, 0, 1, 2]);
        let m = col.broadcast_index(&out);
        assert_eq!((0..6).map(|i| m.map(i)).collect::<Vec<_>>(), vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[1, 256]).to_string(), "(1, 256)");
    }
}
