//! Property tests for the tensor substrate.
//!
//! The key invariants the rest of the system relies on:
//! 1. gather-fused batched execution ≡ explicit-gather batched execution,
//! 2. batched execution ≡ N independent unbatched executions,
//! 3. kernel algebraic identities (softmax rows sum to 1, relu idempotent…),
//! 4. gather byte accounting is exact.

use acrobat_tensor::batch::{run_batched_prim, run_prim, BatchArg, BatchMode};
use acrobat_tensor::{DeviceMem, PrimOp, Shape, Tensor};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    // Keep magnitudes moderate so transcendental kernels stay well-behaved.
    (-64i32..=64).prop_map(|x| x as f32 / 8.0)
}

fn tensor_of(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    proptest::collection::vec(finite_f32(), n)
        .prop_map(move |data| Tensor::from_vec(data, &dims).unwrap())
}

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    (1usize..4, 1usize..6).prop_map(|(m, n)| vec![m, n])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fused_equals_gathered_binary(
        dims in small_dims(),
        batch in 1usize..6,
        seed_a in proptest::collection::vec(finite_f32(), 1..32),
    ) {
        let _ = seed_a;
        let mut mem = DeviceMem::new(1 << 16);
        // Scattered per-instance operands with pads in between.
        let mut lhs = Vec::new();
        let mut rhs = Vec::new();
        for b in 0..batch {
            let t = Tensor::from_fn(&dims, |i| (i + b) as f32 * 0.25 - 1.0);
            lhs.push(mem.upload(&t).unwrap());
            mem.alloc(&Shape::new(&[1 + b % 3])).unwrap();
            let u = Tensor::from_fn(&dims, |i| 1.0 - (i * (b + 1)) as f32 * 0.125);
            rhs.push(mem.upload(&u).unwrap());
        }
        let args = vec![BatchArg::Batched(lhs), BatchArg::Batched(rhs)];
        for op in [PrimOp::Add, PrimOp::Sub, PrimOp::Mul, PrimOp::Maximum] {
            let (f, _) = run_batched_prim(&mut mem, &op, &args, batch, BatchMode::GatherFused).unwrap();
            let (g, _) = run_batched_prim(&mut mem, &op, &args, batch, BatchMode::ExplicitGather).unwrap();
            for (a, b) in f.iter().zip(&g) {
                prop_assert_eq!(mem.read(a).unwrap(), mem.read(b).unwrap());
            }
        }
    }

    #[test]
    fn batched_equals_sequential_matmul(
        m in 1usize..4, k in 1usize..5, n in 1usize..5, batch in 1usize..5,
    ) {
        let mut mem = DeviceMem::new(1 << 16);
        let w = mem.upload(&Tensor::from_fn(&[k, n], |i| (i as f32 * 0.37).sin())).unwrap();
        let mut xs = Vec::new();
        for b in 0..batch {
            mem.alloc(&Shape::new(&[2 + b])).unwrap(); // scatter
            xs.push(mem.upload(&Tensor::from_fn(&[m, k], |i| ((i + 3 * b) as f32 * 0.21).cos())).unwrap());
        }
        let args = vec![BatchArg::Batched(xs.clone()), BatchArg::Shared(w.clone())];
        let (outs, stats) = run_batched_prim(&mut mem, &PrimOp::MatMul, &args, batch, BatchMode::GatherFused).unwrap();
        prop_assert_eq!(stats.launches, 1);
        for (x, o) in xs.iter().zip(&outs) {
            let seq = run_prim(&mut mem, &PrimOp::MatMul, &[x, &w]).unwrap();
            prop_assert_eq!(mem.read(&seq).unwrap(), mem.read(o).unwrap());
        }
    }

    #[test]
    fn device_prim_equals_host_execute(dims in small_dims(), t in small_dims().prop_flat_map(tensor_of)) {
        let _ = dims;
        let mut mem = DeviceMem::new(1 << 16);
        let d = mem.upload(&t).unwrap();
        for op in [PrimOp::Relu, PrimOp::Sigmoid, PrimOp::Tanh, PrimOp::Neg, PrimOp::SoftmaxRows, PrimOp::SumRows, PrimOp::ArgmaxRows] {
            let dev = run_prim(&mut mem, &op, &[&d]).unwrap();
            let host = acrobat_tensor::execute(&op, &[&t]).unwrap();
            let got = mem.read(&dev).unwrap();
            for (a, b) in got.iter().zip(host.data()) {
                prop_assert!((a - b).abs() <= 1e-6, "{op}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one(t in small_dims().prop_flat_map(tensor_of)) {
        let s = acrobat_tensor::execute(&PrimOp::SoftmaxRows, &[&t]).unwrap();
        let n = t.shape().last_dim();
        for r in 0..t.shape().rows() {
            let sum: f32 = s.data()[r * n..(r + 1) * n].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn relu_idempotent(t in small_dims().prop_flat_map(tensor_of)) {
        let once = acrobat_tensor::execute(&PrimOp::Relu, &[&t]).unwrap();
        let twice = acrobat_tensor::execute(&PrimOp::Relu, &[&once]).unwrap();
        prop_assert_eq!(once.data(), twice.data());
    }

    #[test]
    fn add_commutes(a in small_dims().prop_flat_map(tensor_of)) {
        let b = Tensor::from_fn(a.shape().dims(), |i| (i as f32 * 0.7).sin());
        let ab = acrobat_tensor::execute(&PrimOp::Add, &[&a, &b]).unwrap();
        let ba = acrobat_tensor::execute(&PrimOp::Add, &[&b, &a]).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn transpose_involution(t in small_dims().prop_flat_map(tensor_of)) {
        let tt = acrobat_tensor::execute(&PrimOp::Transpose, &[&t]).unwrap();
        let back = acrobat_tensor::execute(&PrimOp::Transpose, &[&tt]).unwrap();
        prop_assert_eq!(back.data(), t.data());
        prop_assert_eq!(back.shape(), t.shape());
    }

    #[test]
    fn concat_slice_roundtrip(
        parts in proptest::collection::vec((1usize..4, 2usize..5), 1..4),
    ) {
        // All parts share the column count of the first.
        let cols = parts[0].1;
        let tensors: Vec<Tensor> = parts
            .iter()
            .enumerate()
            .map(|(i, (rows, _))| Tensor::from_fn(&[*rows, cols], |j| (i * 100 + j) as f32))
            .collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let cat = acrobat_tensor::execute(&PrimOp::Concat { axis: 0 }, &refs).unwrap();
        let mut start = 0usize;
        for t in &tensors {
            let rows = t.shape().dim(0);
            let sl = acrobat_tensor::execute(
                &PrimOp::Slice { axis: 0, start, len: rows },
                &[&cat],
            ).unwrap();
            prop_assert_eq!(sl.data(), t.data());
            start += rows;
        }
    }

    #[test]
    fn gather_accounting_exact(batch in 2usize..8, numel in 1usize..16) {
        let mut mem = DeviceMem::new(1 << 16);
        let mut ts = Vec::new();
        for b in 0..batch {
            ts.push(mem.upload(&Tensor::fill(&[numel], b as f32)).unwrap());
            mem.alloc(&Shape::new(&[1])).unwrap(); // force scatter
        }
        let refs: Vec<&acrobat_tensor::DeviceTensor> = ts.iter().collect();
        let before = mem.stats().gather_bytes;
        let (g, copied) = mem.gather(&refs).unwrap();
        prop_assert!(copied);
        prop_assert_eq!(mem.stats().gather_bytes - before, (batch * numel * 4) as u64);
        let data = mem.read(&g).unwrap();
        for b in 0..batch {
            prop_assert!(data[b * numel..(b + 1) * numel].iter().all(|&x| x == b as f32));
        }
    }
}
