//! Offline stand-in for `criterion`.
//!
//! Implements the criterion API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`
//! and `iter_batched` — with a simple wall-clock measurement loop: a warm-up
//! phase, then timed samples until the configured measurement time elapses,
//! reporting min/mean/max nanoseconds per iteration.  There is no outlier
//! analysis, HTML report, or statistical regression; the numbers are honest
//! wall-clock means, which is what the recorded `bench_results/` tables use.

use std::fmt::Display;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Summary statistics of one completed benchmark, retrievable via
/// [`take_results`] by harnesses that post-process (e.g. JSON output).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark name (`group/function/id`).
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every benchmark result recorded so far, in execution order.
/// Real criterion has no such hook; this shim exposes one so bench mains
/// can emit machine-readable records after the run.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().unwrap())
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup; all variants behave identically here
/// (setup always runs outside the timed region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter's `Display` form.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a function name and parameter.
    pub fn new(function: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{p}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Drives the measurement loop of one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also estimates the per-iteration cost so each timed
        // sample batches enough iterations to dwarf timer overhead.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.warm_up || warm_iters == 0 {
            hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((1e-4 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 20);

        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }

    /// Measures `routine` with a fresh `setup()` value per call; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        loop {
            let input = setup();
            hint::black_box(routine(input));
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline {
            let input = setup();
            let t = Instant::now();
            hint::black_box(routine(input));
            self.samples.push(t.elapsed().as_secs_f64() * 1e9);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark manager: holds configuration, runs benchmarks, prints
/// results to stdout.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the target sample count (advisory in this shim).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Sets the timed-measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Applies CLI configuration (no-op in this shim).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_one(&name.to_string(), self.warm_up, self.measurement, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.warm_up, self.criterion.measurement, f);
        self
    }

    /// Finishes the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one(name: &str, warm_up: Duration, measurement: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { warm_up, measurement, samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
    println!("{name:<48} time: [{} {} {}]", fmt_ns(min), fmt_ns(mean), fmt_ns(max));
    RESULTS.lock().unwrap().push(BenchResult {
        name: name.to_string(),
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
    });
}

/// Declares a benchmark group runner, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        let results = take_results();
        assert!(results.iter().any(|r| r.name == "noop"));
        assert!(results.iter().any(|r| r.name == "grp/x"));
        assert!(results.iter().all(|r| r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns));
    }
}
