//! Offline stand-in for `proptest`.
//!
//! The build container has no crates-registry access, so this shim
//! implements the subset of the proptest API the workspace's property tests
//! use: integer-range strategies, tuples, `prop_map`/`prop_flat_map`,
//! `collection::vec`, the `proptest!` macro, `ProptestConfig::with_cases`,
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * inputs are drawn from a deterministic splitmix64 stream seeded by the
//!   test name, so runs are reproducible but not seed-persisted;
//! * no shrinking — a failing case reports its inputs via the panic message
//!   of the underlying assertion instead of a minimized counterexample.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from a test name (stable across runs).
    pub fn deterministic(name: &str) -> TestRng {
        let mut seed = 0x9E3779B97F4A7C15u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100000001B3);
        }
        TestRng { state: seed }
    }

    /// Derives an independent stream for one test case.
    pub fn fork(&self, case: u32) -> TestRng {
        let mut rng =
            TestRng { state: self.state ^ ((case as u64 + 1).wrapping_mul(0xA24BAED4963EE407)) };
        rng.next_u64(); // decorrelate
        TestRng { state: rng.next_u64() }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Anything that can describe a vector-length range.
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// Generates vectors of `element` values; see [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec-length range");
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration (`proptest::test_runner`).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

/// The common imports (`proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Declares property tests: each `fn` runs `config.cases` times with inputs
/// drawn from the `in` strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let base = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = base.fork(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let result = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("property `{}` failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_hit_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        let s = 3usize..6;
        let mut seen = [false; 3];
        for _ in 0..256 {
            let v = s.generate(&mut rng);
            assert!((3..6).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let inc = -2i32..=2;
        for _ in 0..64 {
            let v = inc.generate(&mut rng);
            assert!((-2..=2).contains(&v));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = crate::TestRng::deterministic("compose");
        let s = crate::collection::vec((0u64..8).prop_map(|x| x * 2), 2..5);
        for _ in 0..64 {
            let v = s.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
            assert!(v.iter().all(|x| x % 2 == 0 && *x < 16));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_inputs(n in 1usize..10, xs in crate::collection::vec(0u32..5, 1..4)) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert_eq!(xs.len(), xs.iter().copied().count());
        }
    }
}
