//! Offline stand-in for `serde`.
//!
//! The build container cannot reach a crates registry, so this workspace
//! vendors the minimal serde surface it uses: the two trait *names* and the
//! two derive macros (which expand to nothing — see the sibling
//! `serde_derive` shim).  No code in the workspace serializes values; the
//! derives only mark types as serialization-ready.
//!
//! Swapping the real serde back in is a one-line change in the workspace
//! `Cargo.toml` and requires no source edits.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
