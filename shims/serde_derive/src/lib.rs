//! Offline stand-in for `serde_derive`.
//!
//! The build container has no crates.io access, and nothing in this
//! workspace actually serializes values — the `#[derive(Serialize,
//! Deserialize)]` attributes exist so the types are serialization-ready
//! once the real dependency is restored.  The derives therefore expand to
//! nothing: the types stay exactly as declared and no trait impls are
//! emitted (none are consumed anywhere).

use proc_macro::TokenStream;

/// Expands to nothing; accepts the same container/field attributes as the
/// real derive so annotated code keeps compiling.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
