//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` API shape this workspace uses — `Mutex` whose
//! `lock()` returns the guard directly (no poison `Result`) and a `Condvar`
//! that waits on `&mut MutexGuard` — so the sources compile unchanged in
//! the offline build container.  Poisoned locks propagate the panic, which
//! matches parking_lot's behavior of not poisoning at all for our purposes
//! (a poisoned lock here means a test already failed).

use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Reader-writer lock; `read()`/`write()` return the guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended by timing out rather than a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and waits for a notification;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(sync::PoisonError::into_inner));
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`; the lock is
    /// re-acquired before returning either way.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guard_derefs() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
